"""Property-based integration tests: safety invariants on random topologies.

Hypothesis generates small random hypergraphs (and seeds); whatever the
topology, the daemon schedule and the starting configuration (legitimate or
arbitrary), every convened meeting must satisfy Exclusion, Synchronization
and the 2-Phase Discussion -- this is the executable core of the
snap-stabilization theorems, exercised well beyond the paper's worked
examples.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import random_k_uniform_hypergraph
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import check_exclusion, check_synchronization
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment


def build(algorithm_cls, hypergraph):
    return algorithm_cls(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))


def run_and_check(algorithm, seed, steps=300, arbitrary=True, synchronous=False):
    initial = None
    if arbitrary:
        initial = algorithm.arbitrary_configuration(random.Random(seed))
    daemon = SynchronousDaemon() if synchronous else default_daemon(seed=seed)
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=daemon,
        initial_configuration=initial,
    )
    result = scheduler.run(max_steps=steps)
    trace = result.trace
    hypergraph = algorithm.hypergraph
    assert check_exclusion(trace, hypergraph).holds
    assert check_synchronization(trace, hypergraph).holds
    assert check_essential_discussion(trace, hypergraph).holds
    assert check_voluntary_discussion(trace, hypergraph).holds
    return trace


hypergraph_params = st.tuples(
    st.integers(min_value=4, max_value=7),    # professors
    st.integers(min_value=2, max_value=5),    # committees
    st.integers(min_value=0, max_value=10_000),  # topology seed
)


@settings(max_examples=12, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc1_safety_from_arbitrary_configurations(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC1Algorithm, hypergraph)
    run_and_check(algorithm, seed)


@settings(max_examples=12, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc2_safety_from_arbitrary_configurations(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC2Algorithm, hypergraph)
    run_and_check(algorithm, seed)


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc3_safety_under_synchronous_daemon(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC3Algorithm, hypergraph)
    run_and_check(algorithm, seed, synchronous=True)


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc2_meetings_convene_on_clean_start(params, seed):
    """Liveness smoke-property: on a clean start with everyone requesting,
    some meeting convenes within a few hundred steps on any topology."""
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC2Algorithm, hypergraph)
    trace = run_and_check(algorithm, seed, steps=400, arbitrary=False)
    assert len(convened_meetings(trace, hypergraph)) > 0


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_single_pointer_implies_no_conflicting_meetings(params, seed):
    """Structural invariant behind Lemma 1: a process has one pointer, so two
    conflicting committees can never meet in the same configuration."""
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC1Algorithm, hypergraph)
    trace = run_and_check(algorithm, seed, steps=250)
    for configuration in trace.configurations:
        held = algorithm.meetings_in(configuration)
        for i, a in enumerate(held):
            for b in held[i + 1:]:
                assert not a.intersects(b)
