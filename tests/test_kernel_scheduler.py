"""Tests for the scheduler: steps, composite atomicity, rounds, termination."""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import pytest

from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm, Environment
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import CentralDaemon, SynchronousDaemon, default_daemon
from repro.kernel.scheduler import Scheduler


class CountUpAlgorithm(DistributedAlgorithm):
    """Every process increments its counter until it reaches ``limit``."""

    def __init__(self, n: int = 3, limit: int = 5) -> None:
        self.n = n
        self.limit = limit

    def process_ids(self) -> Tuple[int, ...]:
        return tuple(range(1, self.n + 1))

    def initial_state(self, pid: int) -> Dict[str, Any]:
        return {"c": 0}

    def arbitrary_state(self, pid: int, rng: Any) -> Dict[str, Any]:
        return {"c": rng.randrange(self.limit + 1)}

    def actions(self, pid: int) -> Sequence[Action]:
        def guard(ctx: ActionContext) -> bool:
            return ctx.own("c") < self.limit

        def stmt(ctx: ActionContext) -> None:
            ctx.write("c", ctx.own("c") + 1)

        return (Action("inc", guard, stmt),)


class CopyNeighbourAlgorithm(DistributedAlgorithm):
    """Two processes; process 2 copies process 1's value when they differ.

    Used to verify composite atomicity: when both move in the same step,
    process 2 must read process 1's *pre-step* value.
    """

    def process_ids(self) -> Tuple[int, ...]:
        return (1, 2)

    def initial_state(self, pid: int) -> Dict[str, Any]:
        return {"v": 0}

    def arbitrary_state(self, pid: int, rng: Any) -> Dict[str, Any]:
        return {"v": rng.randrange(5)}

    def actions(self, pid: int) -> Sequence[Action]:
        if pid == 1:
            return (
                Action(
                    "bump",
                    lambda ctx: ctx.own("v") < 3,
                    lambda ctx: ctx.write("v", ctx.own("v") + 1),
                ),
            )
        return (
            Action(
                "copy",
                lambda ctx: ctx.own("v") != ctx.read(1, "v"),
                lambda ctx: ctx.write("v", ctx.read(1, "v")),
            ),
        )


class TestTermination:
    def test_runs_to_terminal_configuration(self):
        scheduler = Scheduler(CountUpAlgorithm(3, 5), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=100)
        assert result.terminated
        assert result.stop_reason == "terminal"
        for pid in (1, 2, 3):
            assert result.final.get(pid, "c") == 5

    def test_synchronous_daemon_takes_exactly_limit_steps(self):
        scheduler = Scheduler(CountUpAlgorithm(4, 7), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=100)
        assert result.steps == 7

    def test_max_steps_bound(self):
        scheduler = Scheduler(CountUpAlgorithm(3, 1000), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=10)
        assert result.steps == 10
        assert not result.terminated
        assert result.stop_reason == "max_steps"

    def test_stop_predicate(self):
        scheduler = Scheduler(CountUpAlgorithm(2, 50), daemon=SynchronousDaemon())
        result = scheduler.run(
            max_steps=100, stop_predicate=lambda cfg, step: cfg.get(1, "c") >= 5
        )
        assert result.stop_reason == "predicate"
        assert result.final.get(1, "c") == 5

    def test_step_returns_none_when_terminal(self):
        scheduler = Scheduler(CountUpAlgorithm(1, 0), daemon=SynchronousDaemon())
        assert scheduler.step() is None


class TestCompositeAtomicity:
    def test_simultaneous_moves_read_pre_step_snapshot(self):
        scheduler = Scheduler(CopyNeighbourAlgorithm(), daemon=SynchronousDaemon())
        scheduler.step()  # both enabled? process 2 copies 0 (already equal -> only 1 moves)
        # After first step: v1=1, v2 stays 0 (it was equal to the old value).
        assert scheduler.configuration.get(1, "v") == 1
        assert scheduler.configuration.get(2, "v") == 0
        scheduler.step()
        # Both moved simultaneously: process 2 copies the OLD value 1 while
        # process 1 bumps to 2 -- composite atomicity.
        assert scheduler.configuration.get(1, "v") == 2
        assert scheduler.configuration.get(2, "v") == 1


class TestRounds:
    def test_synchronous_rounds_equal_steps(self):
        scheduler = Scheduler(CountUpAlgorithm(3, 4), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=100)
        # Under the synchronous daemon every step completes a round.
        assert result.trace.rounds == result.steps

    def test_central_daemon_rounds_are_coarser(self):
        scheduler = Scheduler(CountUpAlgorithm(3, 4), daemon=CentralDaemon())
        result = scheduler.run(max_steps=100)
        # One process moves per step, so a round needs ~n steps.
        assert result.steps > result.trace.rounds
        assert result.trace.rounds >= 4

    def test_run_rounds_bound(self):
        scheduler = Scheduler(CountUpAlgorithm(3, 1000), daemon=SynchronousDaemon())
        result = scheduler.run_rounds(5)
        assert result.stop_reason == "max_rounds"
        assert result.trace.rounds >= 5


class TestTraceRecording:
    def test_dense_trace_records_every_configuration(self):
        scheduler = Scheduler(CountUpAlgorithm(2, 3), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=100)
        assert len(result.trace.configurations) == result.steps + 1

    def test_sparse_trace_keeps_final_configuration(self):
        scheduler = Scheduler(
            CountUpAlgorithm(2, 3), daemon=SynchronousDaemon(), record_configurations=False
        )
        result = scheduler.run(max_steps=100)
        assert len(result.trace.configurations) == 1  # only the initial one kept densely
        assert result.trace.final.get(1, "c") == 3

    def test_executed_action_labels(self):
        scheduler = Scheduler(CountUpAlgorithm(1, 2), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=10)
        assert result.trace.action_counts() == {"inc": 2}

    def test_executions_of_process(self):
        scheduler = Scheduler(CountUpAlgorithm(2, 2), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=10)
        executions = result.trace.executions_of(1)
        assert [label for _, label in executions] == ["inc", "inc"]

    def test_variable_series(self):
        scheduler = Scheduler(CountUpAlgorithm(1, 3), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=10)
        assert result.trace.variable_series(1, "c") == [0, 1, 2, 3]


class TestEnvironmentHook:
    class CountingEnvironment(Environment):
        def __init__(self):
            self.observations = 0

        def observe(self, configuration, step_index):
            self.observations += 1

    def test_environment_observes_every_step(self):
        env = self.CountingEnvironment()
        scheduler = Scheduler(CountUpAlgorithm(1, 4), environment=env, daemon=SynchronousDaemon())
        scheduler.run(max_steps=10)
        # One observation for the initial configuration plus one per step.
        assert env.observations == 5

    def test_initial_configuration_override(self):
        algo = CountUpAlgorithm(2, 5)
        start = Configuration({1: {"c": 4}, 2: {"c": 5}})
        scheduler = Scheduler(algo, daemon=SynchronousDaemon(), initial_configuration=start)
        result = scheduler.run(max_steps=10)
        assert result.steps == 1
        assert result.final.get(1, "c") == 5
