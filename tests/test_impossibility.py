"""Theorem 1 (Figure 2): Maximal Concurrency and Professor Fairness conflict.

The paper proves the incompatibility for *all* algorithms; these tests
exhibit the phenomenon on the two concrete algorithms:

* ``CC1`` (maximal concurrency): under the staggered adversarial schedule of
  the proof, professor 5 is (almost) starved -- it only participates in the
  rare windows the randomized weakly fair daemon opens by accident, far less
  often than everyone else;
* ``CC2`` (professor fairness): on the same workload professor 5 receives a
  guaranteed, regular share of meetings -- and, dually, ``CC2`` fails the
  Maximal Concurrency check on this topology (see ``test_cc2.py``).
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import figure2_hypergraph
from repro.workloads.impossibility import (
    E12,
    E34,
    configuration_a,
    run_adversarial_schedule,
    staggered_environment,
)
from repro.spec.events import committee_meets

from tests.conftest import make_cc1, make_cc2

SEEDS = (0, 1, 3)
STEPS = 2500


def _aggregate(make, name):
    prof5 = 0
    min_others = 0
    meetings = 0
    for seed in SEEDS:
        outcome = run_adversarial_schedule(
            make(figure2_hypergraph()), name, max_steps=STEPS, seed=seed
        )
        prof5 += outcome.professor5_participations
        min_others += outcome.min_other_participations
        meetings += outcome.meetings_convened
    return prof5, min_others, meetings


class TestAdversarialScheduleSetup:
    def test_configuration_a_matches_figure2(self):
        algo = make_cc1(figure2_hypergraph())
        cfg = configuration_a(algo)
        assert committee_meets(cfg, E12)
        assert not committee_meets(cfg, E34)

    def test_staggered_environment_alternation(self):
        """RequestOut for {1,2}'s members holds exactly while {3,4} meets
        (until the legal-workload timeout kicks in)."""
        algo = make_cc1(figure2_hypergraph())
        env = staggered_environment(algo.hypergraph, timeout_steps=1000)
        cfg = configuration_a(algo)
        assert not env.request_out(1, cfg)          # {3,4} does not meet yet
        assert not env.request_out(3, cfg) or True  # 3 not even in a meeting
        # Once {3,4} meets, professors 1 and 2 want out.
        from repro.core.states import POINTER, STATUS, WAITING

        meeting_34 = cfg.updated(
            {3: {STATUS: WAITING, POINTER: E34}, 4: {STATUS: WAITING, POINTER: E34}}
        )
        assert env.request_out(1, meeting_34)
        assert env.request_out(2, meeting_34)


class TestTheTradeOff:
    def test_cc1_marginalizes_professor5(self):
        prof5, min_others, meetings = _aggregate(make_cc1, "cc1")
        assert meetings > 50  # the schedule keeps the system busy
        assert min_others > 0
        # Professor 5 gets at most a small fraction of everyone else's share.
        assert prof5 < 0.2 * min_others, (prof5, min_others)

    def test_cc2_protects_professor5(self):
        prof5, min_others, meetings = _aggregate(make_cc2, "cc2")
        assert meetings > 50
        assert prof5 > 0
        # Professor 5's share is comparable to the others' (the token reserves
        # committee {1,3,5} for it regularly).
        assert prof5 >= 0.2 * min_others, (prof5, min_others)

    def test_cc2_share_exceeds_cc1_share(self):
        cc1_prof5, cc1_others, _ = _aggregate(make_cc1, "cc1")
        cc2_prof5, cc2_others, _ = _aggregate(make_cc2, "cc2")
        cc1_ratio = cc1_prof5 / max(1, cc1_others)
        cc2_ratio = cc2_prof5 / max(1, cc2_others)
        assert cc2_ratio > cc1_ratio
