"""Tests for the incremental execution engine and the bugfixes shipped with it.

Covers

* dense-vs-incremental equivalence: same seed ⇒ identical step records and
  final configuration for cc1/cc2/cc3 × tree/ring/oracle (clean and
  arbitrary starts), and identical summary metrics on sparse runs;
* copy-on-write ``Configuration.updated``;
* ``Scheduler.run`` evaluating ``stop_predicate`` on idle ticks;
* ``waiting_spells`` rejecting sparse traces and counting the spell that
  opens at the last configuration;
* the scheduler reporting the *executed* selection to
  ``Daemon.notify_enabled`` so ``WeaklyFairDaemon`` bookkeeping stays truthful
  when the empty-selection fallback kicks in;
* ``AdversarialDaemon``'s fallback behaviour after the hot-loop cleanup.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import pytest

from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.generators import figure1_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import (
    AdversarialDaemon,
    Daemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
)
from repro.kernel.scheduler import Scheduler
from repro.kernel.trace import Trace, StepRecord
from repro.metrics.waiting_time import WaitingSpellTracker, waiting_spells


# --------------------------------------------------------------------------- #
# dense vs incremental equivalence
# --------------------------------------------------------------------------- #
ALGORITHMS = ("cc1", "cc2", "cc3")
TOKENS = ("tree", "ring", "oracle")


class TestEnvironmentSensitiveIndex:
    """The status index must be invisible: traces identical with and without.

    ``environment_sensitive_variables = None`` restores the per-step
    ``environment_sensitive_processes`` scan; the maintained index must make
    exactly the same refresh decisions, including across status flips driven
    by stateful environments and across mid-run corruption (which rebuilds
    the index via ``set_configuration``).
    """

    @staticmethod
    def _run_pair(environment_factory, algorithm="cc2", steps=250, corrupt_every=0):
        from repro.core.cc2 import CC2Algorithm
        from repro.kernel.faults import FaultInjector

        results = []
        for disable_index in (False, True):
            hypergraph = figure1_hypergraph()
            coordinator = CommitteeCoordinator(
                hypergraph, algorithm=algorithm, seed=5, engine="incremental"
            )
            algo = coordinator.algorithm
            if disable_index:
                # Per-instance override: the scheduler reads the attribute at
                # construction, so this disables the index for this run only.
                algo.environment_sensitive_variables = None
            scheduler = Scheduler(
                algo,
                environment=environment_factory(),
                daemon=WeaklyFairDaemon(SynchronousDaemon()),
                record_configurations=True,
                engine="incremental",
            )
            injector = FaultInjector(algo, fraction=0.5, seed=7) if corrupt_every else None
            while scheduler.step_index < steps:
                if (
                    injector is not None
                    and scheduler.step_index
                    and scheduler.step_index % corrupt_every == 0
                ):
                    injector.corrupt_scheduler(scheduler)
                if scheduler.step() is None:
                    break
            results.append(scheduler)
        return results

    def test_identical_with_always_requesting(self):
        from repro.workloads.request_models import AlwaysRequestingEnvironment

        with_index, without_index = self._run_pair(lambda: AlwaysRequestingEnvironment(2))
        assert tuple(with_index.trace.steps) == tuple(without_index.trace.steps)
        assert with_index.configuration == without_index.configuration

    def test_identical_with_probabilistic_requests(self):
        from repro.workloads.request_models import ProbabilisticRequestEnvironment

        with_index, without_index = self._run_pair(
            lambda: ProbabilisticRequestEnvironment(0.5, seed=3), algorithm="cc1"
        )
        assert tuple(with_index.trace.steps) == tuple(without_index.trace.steps)
        assert with_index.configuration == without_index.configuration

    def test_identical_across_mid_run_corruption(self):
        from repro.workloads.request_models import AlwaysRequestingEnvironment

        with_index, without_index = self._run_pair(
            lambda: AlwaysRequestingEnvironment(1), corrupt_every=23
        )
        assert tuple(with_index.trace.steps) == tuple(without_index.trace.steps)
        assert with_index.configuration == without_index.configuration


def _run(algorithm: str, token: str, engine: str, **kwargs):
    coordinator = CommitteeCoordinator(
        figure1_hypergraph(), algorithm=algorithm, token=token, seed=13, engine=engine
    )
    return coordinator.run(max_steps=200, **kwargs)


class TestEngineEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("token", TOKENS)
    def test_identical_traces_and_final_configuration(self, algorithm, token):
        dense = _run(algorithm, token, "dense")
        incremental = _run(algorithm, token, "incremental")
        assert tuple(dense.trace.steps) == tuple(incremental.trace.steps)
        assert dense.final == incremental.final

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identical_from_arbitrary_start(self, algorithm):
        dense = _run(algorithm, "ring", "dense", from_arbitrary=True)
        incremental = _run(algorithm, "ring", "incremental", from_arbitrary=True)
        assert tuple(dense.trace.steps) == tuple(incremental.trace.steps)
        assert dense.final == incremental.final

    def test_sparse_run_metrics_match_dense(self):
        dense = _run("cc2", "tree", "dense")
        sparse = _run("cc2", "tree", "incremental", record_configurations=False)
        assert dense.metrics == sparse.metrics
        assert dense.fairness.per_professor == sparse.fairness.per_professor
        assert dense.fairness.per_committee == sparse.fairness.per_committee
        # The sparse contract: the per-event list is not retained.
        assert sparse.events == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CommitteeCoordinator(figure1_hypergraph(), engine="bogus")
        with pytest.raises(ValueError):
            Scheduler(_CountUp(2, 2), engine="turbo")

    def test_incremental_rejects_side_effecting_guards(self):
        # An environment that draws RNG during guard evaluation declares
        # deterministic_guards=False; the incremental engine skips guard
        # evaluations, so asking for it explicitly must be refused loudly
        # instead of silently diverging from the dense engine.
        from repro.kernel.algorithm import Environment

        class _SideEffecting(Environment):
            deterministic_guards = False

        env = _SideEffecting()
        with pytest.raises(ValueError, match="deterministic_guards"):
            Scheduler(_CountUp(2, 2), environment=env, engine="incremental")
        # The dense engine keeps accepting it.
        Scheduler(_CountUp(2, 2), environment=env, engine="dense")

    def test_default_engine_is_incremental_with_dense_fallback(self):
        # The default (engine=None / "auto") resolves to incremental for
        # side-effect-free environments and silently falls back to dense for
        # environments that declare deterministic_guards=False.
        from repro.kernel.algorithm import Environment

        assert Scheduler(_CountUp(2, 2)).engine == "incremental"
        assert Scheduler(_CountUp(2, 2), engine="auto").engine == "incremental"

        class _SideEffecting(Environment):
            deterministic_guards = False

        assert Scheduler(_CountUp(2, 2), environment=_SideEffecting()).engine == "dense"

    def test_probabilistic_environment_memoises_outside_guards(self):
        # The memoised ProbabilisticRequestEnvironment draws in observe(),
        # outside guard evaluation: it now declares deterministic_guards and
        # produces identical traces on both engines for a fixed seed.
        from repro.workloads.request_models import ProbabilisticRequestEnvironment

        assert ProbabilisticRequestEnvironment.deterministic_guards

        def run(engine: str):
            coordinator = CommitteeCoordinator(
                figure1_hypergraph(), algorithm="cc1", seed=5, engine=engine
            )
            return coordinator.run(
                max_steps=300,
                environment=ProbabilisticRequestEnvironment(
                    request_probability=0.4, discussion_steps=2, seed=17
                ),
            )

        dense = run("dense")
        incremental = run("incremental")
        assert tuple(dense.trace.steps) == tuple(incremental.trace.steps)
        assert dense.final == incremental.final
        assert dense.metrics == incremental.metrics


# --------------------------------------------------------------------------- #
# copy-on-write configurations
# --------------------------------------------------------------------------- #
class TestCopyOnWriteConfiguration:
    def test_unwritten_process_state_is_shared(self):
        base = Configuration({1: {"x": 0}, 2: {"x": 0}, 3: {"x": 0}})
        derived = base.updated({2: {"x": 5}})
        assert derived._states[1] is base._states[1]
        assert derived._states[3] is base._states[3]
        assert derived._states[2] is not base._states[2]

    def test_written_values_and_parent_isolation(self):
        base = Configuration({1: {"x": 0, "y": "a"}, 2: {"x": 0}})
        derived = base.updated({1: {"x": 7}})
        assert derived[(1, "x")] == 7 and derived[(1, "y")] == "a"
        assert base[(1, "x")] == 0

    def test_empty_writes_share_everything(self):
        base = Configuration({1: {"x": 0}})
        derived = base.updated({1: {}})
        assert derived._states[1] is base._states[1]
        assert derived == base

    def test_new_process_in_writes(self):
        base = Configuration({1: {"x": 0}})
        derived = base.updated({9: {"x": 1}})
        assert derived[(9, "x")] == 1 and 9 not in base

    def test_accessors_still_return_copies(self):
        base = Configuration({1: {"x": 0}})
        derived = base.updated({})
        derived.state_of(1)["x"] = 99
        derived.to_dict()[1]["x"] = 99
        assert base[(1, "x")] == 0 and derived[(1, "x")] == 0


# --------------------------------------------------------------------------- #
# scheduler bugfix regressions
# --------------------------------------------------------------------------- #
class _CountUp(DistributedAlgorithm):
    def __init__(self, n: int = 2, limit: int = 3) -> None:
        self.n, self.limit = n, limit

    def process_ids(self) -> Tuple[int, ...]:
        return tuple(range(1, self.n + 1))

    def initial_state(self, pid: int) -> Dict[str, Any]:
        return {"c": 0}

    def arbitrary_state(self, pid: int, rng: Any) -> Dict[str, Any]:
        return {"c": rng.randrange(self.limit + 1)}

    def actions(self, pid: int) -> Sequence[Action]:
        return (
            Action(
                "inc",
                lambda ctx: ctx.own("c") < self.limit,
                lambda ctx: ctx.write("c", ctx.own("c") + 1),
            ),
        )


class TestIdleTickStopPredicate:
    def test_predicate_fires_while_quiescent(self):
        # The system is terminal immediately (limit 0); with idle steps allowed
        # the predicate must still be able to stop the run.
        scheduler = Scheduler(_CountUp(2, 0), daemon=SynchronousDaemon())
        result = scheduler.run(
            max_steps=1000,
            allow_idle_steps=True,
            stop_predicate=lambda cfg, step: step >= 3,
        )
        assert result.stop_reason == "predicate"
        assert result.steps == 3

    def test_terminal_still_wins_without_idle_steps(self):
        scheduler = Scheduler(_CountUp(2, 0), daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=10, stop_predicate=lambda cfg, step: step >= 3)
        assert result.stop_reason == "terminal"


class TestWaitingSpells:
    def _hypergraph(self) -> Hypergraph:
        return Hypergraph([1, 2], [(1, 2)])

    def _cfg(self, meeting: bool) -> Configuration:
        edge = self._hypergraph().hyperedges[0]
        status = "waiting" if meeting else "looking"
        pointer = edge if meeting else None
        return Configuration(
            {p: {"S": status, "P": pointer} for p in (1, 2)}
        )

    def test_sparse_trace_rejected_with_clear_error(self):
        scheduler = Scheduler(
            _CountUp(2, 3), daemon=SynchronousDaemon(), record_configurations=False
        )
        result = scheduler.run(max_steps=10)
        assert result.trace.is_sparse
        with pytest.raises(ValueError, match="record_configurations"):
            waiting_spells(result.trace, self._hypergraph())

    def test_spell_opening_at_last_configuration_is_counted(self):
        hypergraph = self._hypergraph()
        trace = Trace(self._cfg(meeting=True))
        record = StepRecord(0, frozenset({1}), {1: "a"}, frozenset({1}), frozenset(), 0)
        # Meeting dissolves in the last configuration: both professors open a
        # waiting spell right there, which must be reported (length 0).
        trace.append(self._cfg(meeting=False), record)
        spells = waiting_spells(trace, hypergraph)
        assert spells == {1: [0], 2: [0]}

    def test_tracker_matches_batch_function(self):
        hypergraph = self._hypergraph()
        sequence = [self._cfg(False), self._cfg(True), self._cfg(False), self._cfg(False)]
        trace = Trace(sequence[0])
        tracker = WaitingSpellTracker(hypergraph)
        tracker.observe(sequence[0])
        for index, cfg in enumerate(sequence[1:]):
            trace.append(
                cfg, StepRecord(index, frozenset({1}), {1: "a"}, frozenset({1}), frozenset(), 0)
            )
            tracker.observe(cfg)
        assert tracker.spells() == waiting_spells(trace, hypergraph)


class _PicksDisabled(Daemon):
    """A broken daemon that always selects a process that is never enabled."""

    def select(self, enabled, configuration, step_index):
        return frozenset({999})


class TestNotifyEnabled:
    def test_scheduler_reports_executed_selection_to_wrapper(self):
        daemon = WeaklyFairDaemon(_PicksDisabled(), patience=100)
        scheduler = Scheduler(_CountUp(3, 5), daemon=daemon)
        scheduler.step()
        # The scheduler's fallback executed the lowest enabled id (1); the
        # wrapper's starvation counters must reflect that actual selection:
        # 1 moved (counter reset), 2 and 3 were passed over (aged by one).
        assert daemon._starvation == {1: 0, 2: 1, 3: 1}

    def test_standalone_select_still_enforces_fairness(self):
        # Driven without notify_enabled (no scheduler), the wrapper must keep
        # aging starved processes on its own provisional bookkeeping.
        daemon = WeaklyFairDaemon(_PicksDisabled(), patience=3)
        cfg = Configuration({p: {"x": 0} for p in (1, 2)})
        forced = set()
        for step in range(4):
            forced |= daemon.select((1, 2), cfg, step)
        assert {1, 2} <= forced


class TestAdversarialDaemonFallback:
    def test_fallback_is_lowest_enabled_id(self):
        daemon = AdversarialDaemon(lambda enabled, cfg, step: [999])
        cfg = Configuration({p: {"x": 0} for p in (3, 5, 9)})
        assert daemon.select((9, 3, 5), cfg, 0) == frozenset({3})

    def test_strategy_intersection_preserved(self):
        daemon = AdversarialDaemon(lambda enabled, cfg, step: [5, 999])
        cfg = Configuration({p: {"x": 0} for p in (3, 5, 9)})
        assert daemon.select((9, 3, 5), cfg, 0) == frozenset({5})
