"""Tests for configurations (snapshots)."""

from __future__ import annotations

import pytest

from repro.kernel.configuration import Configuration


@pytest.fixture
def cfg() -> Configuration:
    return Configuration({1: {"x": 0, "s": "idle"}, 2: {"x": 5, "s": "looking"}})


class TestReads:
    def test_processes(self, cfg):
        assert cfg.processes() == (1, 2)

    def test_get(self, cfg):
        assert cfg.get(1, "x") == 0
        assert cfg.get(2, "s") == "looking"

    def test_get_default(self, cfg):
        assert cfg.get(1, "missing", default="d") == "d"

    def test_getitem(self, cfg):
        assert cfg[(2, "x")] == 5

    def test_contains_and_len(self, cfg):
        assert 1 in cfg and 3 not in cfg
        assert len(cfg) == 2

    def test_state_of_returns_copy(self, cfg):
        state = cfg.state_of(1)
        state["x"] = 99
        assert cfg.get(1, "x") == 0

    def test_iteration_sorted(self, cfg):
        assert list(cfg) == [1, 2]


class TestImmutability:
    def test_constructor_copies_source(self):
        source = {1: {"x": 0}}
        cfg = Configuration(source)
        source[1]["x"] = 42
        assert cfg.get(1, "x") == 0

    def test_updated_does_not_mutate_original(self, cfg):
        updated = cfg.updated({1: {"x": 7}})
        assert cfg.get(1, "x") == 0
        assert updated.get(1, "x") == 7

    def test_updated_preserves_untouched_variables(self, cfg):
        updated = cfg.updated({1: {"x": 7}})
        assert updated.get(1, "s") == "idle"
        assert updated.get(2, "x") == 5

    def test_to_dict_is_detached(self, cfg):
        data = cfg.to_dict()
        data[1]["x"] = 77
        assert cfg.get(1, "x") == 0


class TestEqualityAndHash:
    def test_equal_configurations(self):
        a = Configuration({1: {"x": 1}})
        b = Configuration({1: {"x": 1}})
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_configurations(self):
        assert Configuration({1: {"x": 1}}) != Configuration({1: {"x": 2}})

    def test_not_equal_to_other_types(self):
        assert Configuration({1: {"x": 1}}) != {"x": 1}


class TestRestrict:
    def test_restrict_projects_variables(self, cfg):
        projected = cfg.restrict(("s",))
        assert projected.get(1, "s") == "idle"
        assert projected.get(1, "x") is None
