"""Tests for the token-circulation substrate (Property 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.generators import figure1_hypergraph, path_of_committees
from repro.kernel.daemon import CentralDaemon, SynchronousDaemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.tokenring.composed import ComposedTokenCirculation
from repro.tokenring.dijkstra_ring import COUNTER, DijkstraRingAlgorithm, DijkstraRingToken
from repro.tokenring.leader_election import SelfStabilizingLeaderElection
from repro.tokenring.oracle import OracleTokenModule
from repro.tokenring.tree_circulation import TreeTokenCirculation, dfs_preorder_of_spanning_tree


def read_of(configuration):
    return lambda pid, var: configuration.get(pid, var)


class TestDijkstraRingStructure:
    def test_ring_order_defaults_to_descending_ids(self):
        module = DijkstraRingToken([3, 1, 2])
        assert module.ring == (3, 2, 1)
        assert module.root == 3

    def test_explicit_ring_order(self):
        module = DijkstraRingToken([1, 2, 3], ring_order=[2, 3, 1])
        assert module.root == 2
        assert module.successor(2) == 3
        assert module.predecessor(2) == 1

    def test_invalid_ring_order_rejected(self):
        with pytest.raises(ValueError):
            DijkstraRingToken([1, 2, 3], ring_order=[1, 2])

    def test_k_must_exceed_ring_length(self):
        with pytest.raises(ValueError):
            DijkstraRingToken([1, 2, 3], k=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DijkstraRingToken([])


class TestDijkstraRingSemantics:
    def test_legitimate_initial_configuration_has_one_token_at_root(self):
        module = DijkstraRingToken([1, 2, 3, 4])
        algo = DijkstraRingAlgorithm(module)
        cfg = algo.initial_configuration()
        assert algo.token_holders_in(cfg) == (module.root,)

    def test_at_least_one_token_in_any_configuration(self):
        """The classic invariant: a K-state ring always has >= 1 token."""
        module = DijkstraRingToken([1, 2, 3, 4, 5])
        algo = DijkstraRingAlgorithm(module)
        rng = random.Random(0)
        for _ in range(30):
            cfg = algo.arbitrary_configuration(rng)
            assert len(algo.token_holders_in(cfg)) >= 1

    def test_stabilizes_to_single_token_from_arbitrary(self):
        module = DijkstraRingToken([1, 2, 3, 4, 5])
        algo = DijkstraRingAlgorithm(module)
        rng = random.Random(3)
        scheduler = Scheduler(
            algo,
            daemon=default_daemon(seed=1),
            initial_configuration=algo.arbitrary_configuration(rng),
        )
        scheduler.run(max_steps=400)
        assert len(algo.token_holders_in(scheduler.configuration)) == 1

    def test_token_visits_every_process(self):
        module = DijkstraRingToken([1, 2, 3, 4])
        algo = DijkstraRingAlgorithm(module)
        scheduler = Scheduler(algo, daemon=CentralDaemon())
        visited = set(algo.token_holders_in(scheduler.configuration))
        for _ in range(60):
            if scheduler.step() is None:
                break
            visited |= set(algo.token_holders_in(scheduler.configuration))
        assert visited == {1, 2, 3, 4}

    def test_release_token_moves_it_to_successor(self):
        module = DijkstraRingToken([1, 2, 3])
        algo = DijkstraRingAlgorithm(module)
        scheduler = Scheduler(algo, daemon=SynchronousDaemon())
        holder_before = algo.token_holders_in(scheduler.configuration)[0]
        scheduler.step()
        holder_after = algo.token_holders_in(scheduler.configuration)[0]
        assert holder_after == module.successor(holder_before)

    def test_token_keeps_circulating(self):
        module = DijkstraRingToken([1, 2, 3])
        algo = DijkstraRingAlgorithm(module)
        scheduler = Scheduler(algo, daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=50)
        # The ring never terminates: every step passes the token.
        assert result.steps == 50


class TestOracleModule:
    def test_arbitrary_configuration_is_already_stabilized(self):
        module = OracleTokenModule([1, 2, 3, 4, 5])
        algo = DijkstraRingAlgorithm(module)
        for seed in range(10):
            cfg = algo.arbitrary_configuration(random.Random(seed))
            assert len(algo.token_holders_in(cfg)) == 1

    def test_arbitrary_token_position_varies(self):
        module = OracleTokenModule([1, 2, 3, 4, 5])
        algo = DijkstraRingAlgorithm(module)
        holders = set()
        for seed in range(20):
            cfg = algo.arbitrary_configuration(random.Random(seed))
            holders.add(algo.token_holders_in(cfg)[0])
        assert len(holders) > 1


class TestTreeCirculation:
    def test_preorder_is_a_permutation(self):
        h = figure1_hypergraph()
        order = dfs_preorder_of_spanning_tree(h)
        assert sorted(order) == list(h.vertices)

    def test_preorder_root_is_max_id(self):
        h = figure1_hypergraph()
        assert dfs_preorder_of_spanning_tree(h)[0] == max(h.vertices)

    def test_explicit_root(self):
        h = figure1_hypergraph()
        assert dfs_preorder_of_spanning_tree(h, root=2)[0] == 2

    def test_tree_circulation_single_token_initially(self):
        h = path_of_committees(5)
        module = TreeTokenCirculation(h)
        algo = DijkstraRingAlgorithm(module)
        assert len(algo.token_holders_in(algo.initial_configuration())) == 1

    def test_disconnected_hypergraph_still_covered(self):
        from repro.hypergraph.hypergraph import Hypergraph

        h = Hypergraph([1, 2, 3, 4], [[1, 2], [3, 4]])
        order = dfs_preorder_of_spanning_tree(h)
        assert sorted(order) == [1, 2, 3, 4]


class TestLeaderElection:
    def test_legitimate_initialisation(self):
        h = figure1_hypergraph()
        algo = SelfStabilizingLeaderElection(h)
        assert algo.is_legitimate(algo.initial_configuration())

    def test_converges_from_arbitrary(self):
        h = figure1_hypergraph()
        algo = SelfStabilizingLeaderElection(h)
        rng = random.Random(9)
        scheduler = Scheduler(
            algo,
            daemon=default_daemon(seed=2),
            initial_configuration=algo.arbitrary_configuration(rng),
        )
        result = scheduler.run(max_steps=500)
        assert result.terminated
        assert algo.is_legitimate(scheduler.configuration)
        assert algo.elected(scheduler.configuration) == (algo.true_leader,)

    def test_true_leader_is_max_id(self):
        h = figure1_hypergraph()
        assert SelfStabilizingLeaderElection(h).true_leader == 6

    def test_ghost_leader_eventually_dies(self):
        h = path_of_committees(4)
        algo = SelfStabilizingLeaderElection(h)
        cfg = algo.initial_configuration().to_dict()
        # Plant a ghost id larger than every real id at one process.
        some = min(h.vertices)
        cfg[some]["lid"] = max(h.vertices) + 3
        cfg[some]["d"] = 0
        from repro.kernel.configuration import Configuration

        scheduler = Scheduler(
            algo, daemon=default_daemon(seed=4), initial_configuration=Configuration(cfg)
        )
        scheduler.run(max_steps=800)
        assert algo.is_legitimate(scheduler.configuration)


class TestComposedTokenCirculation:
    def test_initial_configuration_stabilized(self):
        h = figure1_hypergraph()
        algo = ComposedTokenCirculation(h)
        assert algo.is_stabilized(algo.initial_configuration())

    def test_stabilizes_from_arbitrary_configuration(self):
        h = path_of_committees(4)
        algo = ComposedTokenCirculation(h)
        rng = random.Random(17)
        scheduler = Scheduler(
            algo,
            daemon=default_daemon(seed=5),
            initial_configuration=algo.arbitrary_configuration(rng),
        )
        # Run long enough for the election (O(n) rounds) and the ring to merge tokens.
        scheduler.run(max_steps=2500)
        assert len(algo.token_holders(scheduler.configuration)) == 1
        assert algo.election.is_legitimate(scheduler.configuration)

    def test_token_circulates_after_stabilization(self):
        h = path_of_committees(3)
        algo = ComposedTokenCirculation(h)
        scheduler = Scheduler(algo, daemon=default_daemon(seed=6))
        holders = set()
        for _ in range(200):
            if scheduler.step() is None:
                break
            holders |= set(algo.token_holders(scheduler.configuration))
        assert holders == set(h.vertices)


class TestTokenModuleDiagnostics:
    def test_token_holders_and_is_stabilized(self):
        module = DijkstraRingToken([1, 2, 3])
        algo = DijkstraRingAlgorithm(module)
        cfg = algo.initial_configuration()
        assert module.token_holders(read_of(cfg)) == (module.root,)
        assert module.is_stabilized(read_of(cfg))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=8), seed=st.integers(min_value=0, max_value=500))
def test_property_dijkstra_ring_never_has_zero_tokens(n, seed):
    module = DijkstraRingToken(list(range(1, n + 1)))
    algo = DijkstraRingAlgorithm(module)
    cfg = algo.arbitrary_configuration(random.Random(seed))
    assert len(algo.token_holders_in(cfg)) >= 1


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=6), seed=st.integers(min_value=0, max_value=200))
def test_property_dijkstra_ring_stabilizes(n, seed):
    module = DijkstraRingToken(list(range(1, n + 1)))
    algo = DijkstraRingAlgorithm(module)
    scheduler = Scheduler(
        algo,
        daemon=default_daemon(seed=seed),
        initial_configuration=algo.arbitrary_configuration(random.Random(seed)),
    )
    scheduler.run(max_steps=60 * n * n)
    assert len(algo.token_holders_in(scheduler.configuration)) == 1
