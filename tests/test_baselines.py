"""Tests for the related-work baselines (Section 6)."""

from __future__ import annotations

import pytest

from repro.baselines.base import BaselineCoordinator
from repro.baselines.centralized import CentralizedGreedyCoordinator
from repro.baselines.dining import DiningPhilosophersCoordinator
from repro.baselines.drinking import DrinkingPhilosophersCoordinator
from repro.baselines.kumar_tokens import KumarTokenCoordinator
from repro.baselines.manager_token import ManagerTokenCoordinator
from repro.hypergraph.generators import (
    disjoint_committees,
    figure1_hypergraph,
    figure2_hypergraph,
    star_hypergraph,
)

ALL_BASELINES = [
    CentralizedGreedyCoordinator,
    DiningPhilosophersCoordinator,
    DrinkingPhilosophersCoordinator,
    ManagerTokenCoordinator,
    KumarTokenCoordinator,
]


class RecordingCoordinator(CentralizedGreedyCoordinator):
    """Greedy coordinator that records convened committees per round (for invariants)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.history = []

    def step_round(self):
        convened = super().step_round()
        self.history.append(convened)
        return convened


@pytest.mark.parametrize("coordinator_cls", ALL_BASELINES)
class TestCommonBehaviour:
    def test_runs_and_convenes_meetings(self, coordinator_cls):
        coordinator = coordinator_cls(figure1_hypergraph(), seed=1)
        result = coordinator.run(rounds=200)
        assert result.rounds == 200
        assert result.meetings_convened > 0

    def test_exclusion_by_construction(self, coordinator_cls):
        """In every round, members of simultaneously-held meetings are disjoint."""
        coordinator = coordinator_cls(figure1_hypergraph(), seed=2)
        for _ in range(150):
            coordinator.step_round()
            members = []
            for edge in coordinator.remaining:
                members.extend(edge.members)
            assert len(members) == len(set(members))

    def test_disjoint_committees_reach_full_concurrency(self, coordinator_cls):
        coordinator = coordinator_cls(disjoint_committees(3, 2), seed=3)
        result = coordinator.run(rounds=100)
        assert result.peak_concurrency == 3

    def test_star_topology_never_exceeds_one_meeting(self, coordinator_cls):
        coordinator = coordinator_cls(star_hypergraph(4, 2), seed=4)
        result = coordinator.run(rounds=150)
        assert result.peak_concurrency == 1
        assert result.meetings_convened > 0

    def test_result_row_keys(self, coordinator_cls):
        coordinator = coordinator_cls(figure2_hypergraph(), seed=5)
        row = coordinator.run(rounds=100).as_row()
        assert {"rounds", "meetings", "meetings/round", "mean_conc", "peak_conc", "min_part", "jain"} <= set(row)


@pytest.mark.parametrize("coordinator_cls", ALL_BASELINES)
class TestDeltaDrivenEligibility:
    """The round engine maintains committee eligibility incrementally (per
    waiting-status change) instead of re-scanning every member list each
    round; the maintained set must always equal the brute-force definition."""

    @staticmethod
    def _brute_force_eligible(coordinator):
        busy = set(coordinator.meeting_of)
        return [
            edge
            for edge in coordinator.hypergraph.hyperedges
            if edge not in coordinator.remaining
            and all(m in coordinator.waiting and m not in busy for m in edge)
        ]

    @pytest.mark.parametrize("probability", [1.0, 0.4])
    def test_matches_brute_force_every_round(self, coordinator_cls, probability):
        coordinator = coordinator_cls(
            figure2_hypergraph(), request_probability=probability, seed=6
        )
        for _ in range(120):
            coordinator.step_round()
            assert coordinator._eligible_committees() == self._brute_force_eligible(
                coordinator
            )


class TestEngineParameters:
    def test_invalid_meeting_duration(self):
        with pytest.raises(ValueError):
            CentralizedGreedyCoordinator(figure1_hypergraph(), meeting_duration=0)

    def test_invalid_request_probability(self):
        with pytest.raises(ValueError):
            CentralizedGreedyCoordinator(figure1_hypergraph(), request_probability=0.0)

    def test_meeting_duration_respected(self):
        coordinator = RecordingCoordinator(disjoint_committees(1, 2), meeting_duration=5)
        coordinator.run(rounds=20)
        # With a single committee of duration 5, at most ceil(20/5) meetings fit.
        assert coordinator.per_committee[(1, 2)] <= 4

    def test_low_request_probability_slows_throughput(self):
        fast = CentralizedGreedyCoordinator(figure1_hypergraph(), request_probability=1.0, seed=1)
        slow = CentralizedGreedyCoordinator(figure1_hypergraph(), request_probability=0.2, seed=1)
        assert fast.run(rounds=200).meetings_convened > slow.run(rounds=200).meetings_convened


class TestFairnessContrast:
    def test_kumar_is_fair_on_figure2(self):
        """Kumar's per-committee tokens keep every professor participating."""
        coordinator = KumarTokenCoordinator(figure2_hypergraph(), seed=7)
        result = coordinator.run(rounds=400)
        assert result.starved_professors == ()

    def test_dining_can_starve_rarely_eligible_committees(self):
        """The dining reduction only serves committees that become *hungry*
        (all members waiting); with staggered meetings the three-member
        committee {1,3,5} of Figure 2 never does, so professor 5 starves --
        exactly the fairness deficiency the paper attributes to the classic
        reductions (and the phenomenon behind Theorem 1)."""
        coordinator = DiningPhilosophersCoordinator(figure2_hypergraph(), seed=7)
        result = coordinator.run(rounds=400)
        assert result.per_committee[(1, 2)] > 0
        assert result.per_committee[(3, 4)] > 0
        assert 5 in result.starved_professors

    def test_centralized_greedy_can_starve(self):
        """The greedy oracle ignores fairness: on Figure 2 the largest
        committee {1,3,5} is preferred and professors 2 and 4 may starve --
        or, depending on timing, {1,2}/{3,4} win and 5 starves.  Either way
        somebody is systematically disadvantaged compared to Kumar."""
        greedy = CentralizedGreedyCoordinator(figure2_hypergraph(), seed=7)
        kumar = KumarTokenCoordinator(figure2_hypergraph(), seed=7)
        greedy_result = greedy.run(rounds=400)
        kumar_result = kumar.run(rounds=400)
        assert greedy_result.jain_fairness_index() <= kumar_result.jain_fairness_index() + 1e-9


class TestManagerConfiguration:
    def test_single_manager_behaves_like_centralized(self):
        h = figure1_hypergraph()
        manager = ManagerTokenCoordinator(h, num_managers=1, seed=1)
        result = manager.run(rounds=200)
        assert result.meetings_convened > 0

    def test_invalid_manager_count(self):
        with pytest.raises(ValueError):
            ManagerTokenCoordinator(figure1_hypergraph(), num_managers=0)

    def test_managers_capped_by_committee_count(self):
        h = figure2_hypergraph()
        manager = ManagerTokenCoordinator(h, num_managers=10)
        assert manager.num_managers == h.m
