"""Tier-1 wiring for ``tools/check_repo.py``.

Runs the repo hygiene checks as part of the ordinary test suite so that
tracked ``.pyc`` files, broken ``docs/`` links/module references, and
``docs/CLI.md`` flag drift against ``repro.cli`` fail CI, not a reader.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_repo():
    spec = importlib.util.spec_from_file_location(
        "check_repo", REPO_ROOT / "tools" / "check_repo.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_repo = _load_check_repo()


def test_no_tracked_bytecode():
    assert check_repo.check_no_tracked_bytecode() == []


def test_docs_links_and_module_references_resolve():
    assert check_repo.check_doc_links() == []


def test_cli_docs_match_parser():
    assert check_repo.check_cli_docs() == []


def test_perf_rows_match_schemas():
    assert check_repo.check_perf_rows() == []


def test_spawn_entry_points_resolvable():
    assert check_repo.check_spawn_entry_points() == []


def test_cli_stays_a_thin_adapter():
    assert check_repo.check_cli_thin_adapter() == []


def test_cli_thin_adapter_checker_catches_drift(tmp_path, monkeypatch):
    # Every forbidden spelling must bite: plain imports, aliased imports,
    # submodule imports and both from-forms of the batched module — while
    # the driver import (the sanctioned path) stays clean.
    bad = tmp_path / "cli.py"
    bad.write_text(
        "import multiprocessing\n"
        "import multiprocessing.pool\n"
        "import socket as s\n"
        "from repro.campaign import batched\n"
        "from repro.campaign.batched import group_jobs\n"
        "from repro.campaign.driver import CampaignDriver\n"  # allowed
        "from repro.campaign import driver\n"                 # allowed
    )
    monkeypatch.setattr(check_repo, "CLI_PATH", bad)
    errors = check_repo.check_cli_thin_adapter()
    assert len(errors) == 5
    assert all("thin-adapter" in e for e in errors)
    assert any(":4:" in e and "batched" in e for e in errors)
    assert not any(":6:" in e or ":7:" in e for e in errors)


def test_perf_row_checker_catches_drift(tmp_path, monkeypatch):
    # The schema checker must actually bite: unknown bench names, missing
    # fields and malformed lines all surface as errors.
    rows = tmp_path / "perf_rows.jsonl"
    rows.write_text(
        '{"bench": "engine_scaling", "engine": "dense", "n": 1, "steps": 2, '
        '"steps_per_sec": 3.0, "timestamp": 1.0}\n'          # ok
        '{"bench": "mystery_bench", "timestamp": 1.0}\n'     # unknown bench
        '{"bench": "campaign_scaling", "timestamp": 1.0}\n'  # missing fields
        "not json at all\n"                                  # malformed
        '{"engine": "dense", "timestamp": 1.0}\n'            # no bench
    )
    monkeypatch.setattr(check_repo, "PERF_ROWS_PATH", rows)
    errors = check_repo.check_perf_rows()
    assert len(errors) == 4
    assert any("mystery_bench" in e for e in errors)
    assert any("missing field" in e for e in errors)
    assert any("not valid JSON" in e for e in errors)
    assert any("missing string 'bench'" in e for e in errors)


def test_checks_catch_drift():
    # The flag checker must actually bite: an undocumented-but-real flag set
    # and a documented-but-fake flag both surface as errors.
    flags = check_repo._parser_flags()
    assert "--stop-on-violation" in flags["check"]
    assert "--engine" in flags["run"]
    # Flag completeness is per subcommand section: --engine appearing only
    # in the check section must still flag the run section as incomplete.
    sections = check_repo._subcommand_sections(
        "## `repro-cc run`\n\nsome text, no flags\n\n"
        "## `repro-cc check`\n\n| `--engine` | ... |\n"
    )
    assert "--engine" in sections["check"] and "--engine" not in sections["run"]
    assert not check_repo._module_resolves("repro.does_not_exist")
    assert check_repo._module_resolves("repro")  # bare package name
    assert check_repo._module_resolves("repro.kernel.scheduler")
    assert check_repo._module_resolves("repro.kernel.trace")
    # Class-qualified references resolve through the attribute fallback ...
    assert check_repo._module_resolves("repro.kernel.trace.StepDelta")
    assert check_repo._module_resolves("repro.kernel.StepDelta")
    assert check_repo._module_resolves("repro.kernel.scheduler.Scheduler")
    # ... and typos in either half still fail.
    assert not check_repo._module_resolves("repro.kernel.trace.StepDeltaX")
    assert not check_repo._module_resolves("repro.kernel.tracee.StepDelta")
    # The docs regex captures class-qualified names so they are validated.
    assert "repro.kernel.trace.StepDelta" in check_repo._MODULE_RE.findall(
        "see `repro.kernel.trace.StepDelta` for details"
    )
