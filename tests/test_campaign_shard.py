"""Tests for the multi-machine sharding layer: protocol, collector, client.

The acceptance property of the whole subsystem lives at the bottom
(``TestShardedCampaignEndToEnd``): an in-process collector fed by three
real ``repro-cc campaign --collector`` shard *processes*, one of which is
SIGKILLed mid-range so its undelivered jobs are re-dispatched to the
survivors, produces a merged campaign byte-identical to the same matrix
run locally with ``--jobs 1``.  Everything above it exercises the parts in
isolation: the NDJSON control-message schemas, the matrix-fingerprint
handshake, the lease ledger (:class:`CollectorState`), dead-shard release
and re-dispatch, and the acking/reconnecting client transport.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.campaign import (
    AckingSocketSink,
    CONTROL_SCHEMAS,
    CampaignSpec,
    Collector,
    CollectorState,
    ResumeError,
    ShardProtocolError,
    ShardRecord,
    control_message,
    execute_job,
    expand_jobs,
    hello_message,
    matrix_fingerprint,
    run_campaign,
    run_shard,
    shard_slice,
    validate_control,
)
from repro.campaign.sinks import row_line


def _jobs(seeds=(1, 2), max_steps=60, **overrides):
    defaults = dict(
        scenarios=("figure1",),
        algorithms=("cc1", "cc2"),
        seeds=tuple(seeds),
        max_steps=max_steps,
    )
    defaults.update(overrides)
    return expand_jobs(CampaignSpec(**defaults))


@pytest.fixture(scope="module")
def small_matrix():
    """Four quick jobs plus their executed rows and --jobs 1 baseline."""
    jobs = _jobs()
    baseline = run_campaign(jobs, jobs=1)
    rows = {result.index: result.row for result in baseline.results}
    return jobs, rows, baseline.jsonl_lines()


class TestControlProtocol:
    _SAMPLES = {
        "hello": dict(shard="2/3", jobs=4, fingerprint="ab" * 32, range=[2, 4]),
        "welcome": dict(jobs=4, pending=3),
        "reject": dict(error="matrix fingerprint mismatch"),
        "pull": dict(max=4),
        "grant": dict(jobs=[0, 1], done=False),
        "ack": dict(job=0),
    }

    def test_every_registered_op_builds_and_validates(self):
        assert set(self._SAMPLES) == set(CONTROL_SCHEMAS)
        for op, fields in self._SAMPLES.items():
            message = control_message(op, **fields)
            assert set(message) == set(CONTROL_SCHEMAS[op])
            validate_control(message)  # round-trips
            # Rows are distinguishable from control traffic by construction.
            assert "op" in message

    def test_malformed_messages_are_rejected(self):
        with pytest.raises(ShardProtocolError, match="unknown control op"):
            validate_control({"op": "barter", "offer": 3})
        with pytest.raises(ShardProtocolError, match="malformed 'ack'"):
            control_message("ack")  # missing the job field
        with pytest.raises(ShardProtocolError, match="malformed 'pull'"):
            control_message("pull", max=4, urgency="high")  # extra field

    def test_matrix_fingerprint_pins_the_expansion(self):
        jobs = _jobs()
        assert matrix_fingerprint(jobs) == matrix_fingerprint(_jobs())
        assert matrix_fingerprint(jobs) != matrix_fingerprint(_jobs(seeds=(1, 3)))
        assert matrix_fingerprint(jobs) != matrix_fingerprint(_jobs(max_steps=61))
        assert matrix_fingerprint(jobs) != matrix_fingerprint(list(reversed(jobs)))

    def test_hello_message_carries_range_or_null(self):
        jobs = _jobs()
        static = hello_message(jobs, shard="1/2", job_range=(0, 2))
        assert static["range"] == [0, 2] and static["jobs"] == len(jobs)
        pull = hello_message(jobs)
        assert pull["range"] is None
        validate_control(static)
        validate_control(pull)


class TestShardSlice:
    def test_slices_partition_the_matrix_in_order(self):
        jobs = _jobs(seeds=(1, 2, 3))  # 6 jobs
        for count in (1, 2, 3, 4, 6, 7):
            slices = [shard_slice(jobs, i, count) for i in range(count)]
            rejoined = [job for part in slices for job in part]
            assert rejoined == list(jobs)
            sizes = [len(part) for part in slices]
            assert max(sizes) - min(sizes) <= 1  # balanced

    def test_bad_shard_arguments_raise(self):
        jobs = _jobs()
        with pytest.raises(ValueError, match="shard count"):
            shard_slice(jobs, 0, 0)
        with pytest.raises(ValueError, match="shard index"):
            shard_slice(jobs, 2, 2)


class TestCollectorState:
    def test_lease_deliver_and_done(self, small_matrix):
        jobs, rows, _ = small_matrix
        state = CollectorState(jobs)
        shard = ShardRecord(name="a", static=True)
        state.register(shard)
        assert state.lease_range(shard, 0, 2) == [0, 1]
        # Leased indices are not handed to anyone else.
        other = ShardRecord(name="b", static=False)
        state.register(other)
        granted, done = state.lease(other, limit=10)
        assert granted == [2, 3] and not done
        for index in (0, 1, 2, 3):
            assert state.deliver(shard, rows[index]) == index
        assert state.done
        # Every shard now gets the finish signal.
        assert state.lease(other, limit=1) == ([], True)
        assert [row["job"] for row in state.merged_rows()] == [0, 1, 2, 3]

    def test_deliver_rejects_foreign_and_out_of_matrix_rows(self, small_matrix):
        jobs, rows, _ = small_matrix
        state = CollectorState(jobs)
        shard = ShardRecord(name="a", static=False)
        state.register(shard)
        with pytest.raises(ShardProtocolError, match="outside the 4-job matrix"):
            state.deliver(shard, {**rows[0], "job": 99})
        imposter = dict(rows[0])
        imposter["scenario"] = "star-5"
        with pytest.raises(ResumeError):
            state.deliver(shard, imposter)
        # Duplicates of a valid row simply overwrite (rows are deterministic).
        state.deliver(shard, rows[0])
        state.deliver(shard, rows[0])
        assert len(state.merged_rows()) == 1

    def test_release_returns_leases_for_redispatch(self, small_matrix):
        jobs, rows, _ = small_matrix
        state = CollectorState(jobs)
        dead = ShardRecord(name="dead", static=True)
        state.register(dead)
        state.lease_range(dead, 0, len(jobs))
        state.deliver(dead, rows[0])
        rescuer = ShardRecord(name="rescue", static=False)
        state.register(rescuer)
        # Everything undelivered is leased to the dead shard: a rescuer
        # blocks until the dead shard's connection handler releases them.
        state.release(dead)
        granted, done = state.lease(rescuer, limit=10)
        assert granted == [1, 2, 3] and not done

    def test_preload_adopts_prior_rows_and_skips_foreign_indices(self, small_matrix):
        jobs, rows, _ = small_matrix
        state = CollectorState(jobs)
        assert state.preload(rows[2])
        assert not state.preload({**rows[0], "job": 999})  # past the matrix
        assert state.pending_count() == len(jobs) - 1


class TestCollectorService:
    def test_static_shards_merge_byte_identical(self, small_matrix):
        jobs, _, baseline = small_matrix
        with Collector(jobs, "tcp:127.0.0.1:0") as collector:
            threads = [
                threading.Thread(
                    target=run_shard,
                    args=(collector.address, jobs),
                    kwargs=dict(shard=(i, 2)),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            rows = collector.run(timeout=60)
            for thread in threads:
                thread.join(timeout=10)
        assert [row_line(row) for row in rows] == baseline
        assert len(collector.state.shards) == 2

    def test_pull_shards_merge_byte_identical(self, small_matrix, tmp_path):
        jobs, _, baseline = small_matrix
        address = f"unix:{tmp_path / 'collector.sock'}"
        with Collector(jobs, address) as collector:
            threads = [
                threading.Thread(
                    target=run_shard,
                    args=(address, jobs),
                    kwargs=dict(batch=1, name=f"puller-{i}"),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            rows = collector.run(timeout=60)
            for thread in threads:
                thread.join(timeout=10)
        assert [row_line(row) for row in rows] == baseline

    def test_mismatched_matrix_is_rejected(self, small_matrix):
        jobs, _, _ = small_matrix
        with Collector(jobs, "tcp:127.0.0.1:0") as collector:
            with pytest.raises(ShardProtocolError, match="fingerprint mismatch"):
                run_shard(collector.address, _jobs(max_steps=61), retries=0)
            # A matrix of a different size gets the clearer size diagnostic.
            with pytest.raises(ShardProtocolError, match="matrix size mismatch"):
                run_shard(collector.address, jobs[:2], retries=0)
        assert collector.state.rows == {}

    def test_dead_shard_range_is_redispatched(self, small_matrix, tmp_path):
        jobs, rows, baseline = small_matrix
        path = str(tmp_path / "collector.sock")
        with Collector(jobs, f"unix:{path}") as collector:
            # A scripted victim claims the whole matrix, delivers exactly one
            # row, then dies without closing cleanly.
            victim = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            victim.connect(path)
            reader = victim.makefile("r", encoding="utf-8")
            hello = hello_message(jobs, shard="victim", job_range=(0, len(jobs)))
            victim.sendall((row_line(hello) + "\n").encode("utf-8"))
            assert json.loads(reader.readline())["op"] == "welcome"
            victim.sendall((row_line(rows[0]) + "\n").encode("utf-8"))
            ack = json.loads(reader.readline())
            assert ack == {"op": "ack", "job": 0}
            # Die abruptly.  shutdown() forces the FIN out even though the
            # makefile() reader still holds a reference to the socket.
            victim.shutdown(socket.SHUT_RDWR)
            reader.close()
            victim.close()

            # The rescuer's pulls block until the victim's handler notices
            # the dead connection and releases its leases — then the whole
            # undelivered range is re-dispatched here.
            result = run_shard(f"unix:{path}", jobs, name="rescue")
            assert [job.index for job in result.jobs] == [1, 2, 3]
            assert collector.state.wait_done(timeout=10)
            merged = collector.state.merged_rows()
        assert [row_line(row) for row in merged] == baseline
        names = [shard.name for shard in collector.state.shards]
        assert names == ["victim", "rescue"]
        assert collector.state.shards[0].delivered == 1

    def test_prior_rows_shrink_the_campaign(self, small_matrix, tmp_path):
        jobs, rows, baseline = small_matrix
        address = f"unix:{tmp_path / 'collector.sock'}"
        stray = {**rows[0], "job": 999}
        collector = Collector(jobs, address, prior_rows=[rows[1], stray])
        assert collector.skipped_prior == 1
        assert collector.state.pending_count() == len(jobs) - 1
        with collector:
            worker = threading.Thread(target=run_shard, args=(address, jobs))
            worker.start()
            merged = collector.run(timeout=60)
            worker.join(timeout=10)
        assert [row_line(row) for row in merged] == baseline


class TestAckingClient:
    def test_unreachable_collector_raises_connection_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        sink = AckingSocketSink(
            f"tcp:127.0.0.1:{port}", retries=1, retry_delay=0.01
        )
        with pytest.raises(ConnectionError, match="after 2 attempt"):
            sink.write_row({"job": 0})
        sink.close()

    def test_reconnect_replays_hello_and_resends_the_row(self, tmp_path):
        # Connection 1 swallows the row and dies before acking; the client
        # must rebuild the transport, replay its hello and re-send.
        path = str(tmp_path / "flaky.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(2)
        hellos, rows = [], []

        def serve():
            for attempt in range(2):
                conn, _ = server.accept()
                reader = conn.makefile("r", encoding="utf-8")
                hellos.append(json.loads(reader.readline()))
                conn.sendall(b'{"jobs": 1, "op": "welcome", "pending": 1}\n')
                row = json.loads(reader.readline())
                if attempt == 0:
                    # Lost ack: die mid-exchange.  The reader holds a second
                    # reference to the socket, so close it too or no FIN is
                    # ever sent and the client waits forever.
                    reader.close()
                    conn.close()
                    continue
                rows.append(row)
                conn.sendall(
                    (row_line({"op": "ack", "job": row["job"]}) + "\n").encode()
                )
                reader.close()
                conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        hello = {"op": "hello", "shard": "s", "jobs": 1, "fingerprint": "f", "range": None}
        sink = AckingSocketSink(f"unix:{path}", hello=hello, retry_delay=0.01)
        sink.write_row({"job": 7, "ok": True})
        sink.close()
        thread.join(timeout=10)
        server.close()
        assert len(hellos) == 2 and all(h == hello for h in hellos)
        assert rows == [{"job": 7, "ok": True}]


class TestShardedCampaignEndToEnd:
    """The PR's acceptance property, at the process level.

    Three real ``repro-cc campaign --collector`` shard processes feed one
    collector: a static shard owning jobs 0-1, and two pull workers.  The
    static shard is SIGKILLed after its first row lands, its undelivered
    range is released and re-dispatched to the pull workers, and the merged
    artifact is byte-identical to the same matrix run with ``--jobs 1``.
    """

    _MATRIX_FLAGS = [
        "--scenario", "figure1", "--algorithm", "cc2",
        "--seeds", "6", "--steps", "1200",
    ]

    def _shard_command(self, address, extra=()):
        return (
            [sys.executable, "-m", "repro", "campaign"]
            + self._MATRIX_FLAGS
            + ["--collector", address]
            + list(extra)
        )

    def test_killed_shard_is_redispatched_and_merge_is_byte_identical(self, tmp_path):
        jobs = expand_jobs(
            CampaignSpec(
                scenarios=("figure1",),
                algorithms=("cc2",),
                seeds=tuple(range(1, 7)),
                max_steps=1200,
            )
        )
        assert len(jobs) == 6
        baseline = run_campaign(jobs, jobs=1).jsonl_lines()

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        address = f"unix:{tmp_path / 'collector.sock'}"

        with Collector(jobs, address) as collector:
            victim = subprocess.Popen(
                self._shard_command(address, ["--shard", "1/3"]),
                cwd=str(tmp_path), env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            # Let the victim register (and lease jobs 0-1) before the pull
            # workers connect, so the kill below tears down a shard that
            # really owns an undelivered range.
            deadline = time.monotonic() + 60
            while not collector.state.shards:
                assert time.monotonic() < deadline, "victim never registered"
                assert victim.poll() is None, "victim exited prematurely"
                time.sleep(0.002)
            pullers = [
                subprocess.Popen(
                    self._shard_command(address),
                    cwd=str(tmp_path), env=env,
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                )
                for _ in range(2)
            ]
            try:
                # The victim owns jobs 0-1 (shard 1/3 of 6).  Kill it the
                # moment its first row lands — mid-range, before job 1.
                deadline = time.monotonic() + 60
                while 0 not in collector.state.rows:
                    assert time.monotonic() < deadline, "victim never delivered"
                    assert victim.poll() is None, "victim exited prematurely"
                    time.sleep(0.002)
                victim.kill()
                victim.wait(timeout=30)
                missing = [i for i in (0, 1) if i not in collector.state.rows]
                assert missing, "victim finished its whole range before the kill"

                # The survivors sweep the re-dispatched range to completion.
                assert collector.state.wait_done(timeout=120)
            finally:
                victim.kill()
                for proc in pullers:
                    if collector.state.done:
                        proc.wait(timeout=60)
                    else:
                        proc.kill()
            merged = collector.state.merged_rows()

        assert victim.returncode < 0  # died by signal, not a clean exit
        assert [row_line(row) for row in merged] == baseline
        # All three shard processes registered; the dead one's undelivered
        # jobs were re-dispatched over the same socket, no operator step.
        assert len(collector.state.shards) == 3
        assert collector.state.shards[0].static
        assert collector.state.shards[0].delivered == 1  # killed after row 0
        # Duplicates (re-sent after a lost ack) are protocol-legal, so the
        # total is a floor, not an exact count.
        delivered = sum(shard.delivered for shard in collector.state.shards)
        assert delivered >= len(jobs)
