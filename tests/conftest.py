"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import (
    figure1_hypergraph,
    figure2_hypergraph,
    figure3_hypergraph,
    figure4_hypergraph,
    path_of_committees,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.tokenring.oracle import OracleTokenModule
from repro.tokenring.tree_circulation import TreeTokenCirculation


@pytest.fixture
def fig1() -> Hypergraph:
    return figure1_hypergraph()


@pytest.fixture
def fig2() -> Hypergraph:
    return figure2_hypergraph()


@pytest.fixture
def fig3() -> Hypergraph:
    return figure3_hypergraph()


@pytest.fixture
def fig4() -> Hypergraph:
    return figure4_hypergraph()


@pytest.fixture
def triangle() -> Hypergraph:
    """Three 2-committees sharing professors pairwise: {1,2},{2,3},{1,3}."""
    return Hypergraph([1, 2, 3], [[1, 2], [2, 3], [1, 3]])


@pytest.fixture
def two_disjoint() -> Hypergraph:
    """Two disjoint committees: both can always meet simultaneously."""
    return Hypergraph([1, 2, 3, 4], [[1, 2], [3, 4]])


def make_cc1(hypergraph: Hypergraph, token: str = "oracle") -> CC1Algorithm:
    return CC1Algorithm(hypergraph, _binding(hypergraph, token))


def make_cc2(hypergraph: Hypergraph, token: str = "oracle") -> CC2Algorithm:
    return CC2Algorithm(hypergraph, _binding(hypergraph, token))


def make_cc3(hypergraph: Hypergraph, token: str = "oracle") -> CC3Algorithm:
    return CC3Algorithm(hypergraph, _binding(hypergraph, token))


def _binding(hypergraph: Hypergraph, token: str) -> TokenBinding:
    if token == "tree":
        return TokenBinding(TreeTokenCirculation(hypergraph))
    return TokenBinding(OracleTokenModule(hypergraph.vertices))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
