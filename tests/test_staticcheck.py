"""Tier-1 wiring for the ``repro-lint`` static-analysis suite.

Four layers of assurance:

* **corpus** — ``tests/fixtures/staticcheck/`` holds deliberately-bad (and
  deliberately-clean) snippets; every offending line carries an
  ``# expect: CODE`` marker (``# expect-suppressed: CODE`` for lines whose
  suppression must be honored).  The tests assert the AST passes emit
  *exactly* the marked diagnostics — each pass both fires and suppresses;
* **live tree** — the full pass registry (AST + migrated RC0xx repo checks)
  runs clean on the repository itself, which is the acceptance bar every
  future PR inherits;
* **mutation** — seeding a known-bad mutation (an undeclared writer
  variable in ``CC1Algorithm``) into a copy of the tree is caught
  statically, proving the writer-set pass guards the real algorithms, not
  just the corpus;
* **CLI** — exit codes, ``--format json`` determinism, pass selection.
"""

from __future__ import annotations

import json
import re
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.staticcheck import ALL_CODES, Project, active, ast_passes, run_passes
from tools.staticcheck.cli import main as lint_main
from tools.staticcheck.diagnostics import (
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
    render_json,
)
from tools.staticcheck.registry import all_passes, known_pass_names
from tools.staticcheck.repo_checks import REPO_CHECK_PASSES
from tools.staticcheck.writer_sets import WriterSetConformancePass

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "staticcheck"

#: ``# expect: RL101`` / ``# expect-suppressed: RL106, RL102`` markers.
_MARKER_RE = re.compile(r"#\s*expect(?P<suppressed>-suppressed)?:\s*(?P<codes>[A-Z0-9_,\s]+)")


def _expected_markers():
    """``(filename, line, code, suppressed)`` for every corpus marker."""
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _MARKER_RE.search(line)
            if not match:
                continue
            for code in match.group("codes").split(","):
                code = code.strip()
                if code:
                    expected.add(
                        (path.name, lineno, code, bool(match.group("suppressed")))
                    )
    return expected


def _corpus_project() -> Project:
    return Project.from_files(sorted(FIXTURES.glob("*.py")), root=FIXTURES)


# --------------------------------------------------------------------------- #
# corpus: every pass fires exactly where the markers say, and nowhere else
# --------------------------------------------------------------------------- #
def test_corpus_matches_markers_exactly():
    expected = _expected_markers()
    assert expected, "fixture corpus has no markers — corpus broken"
    diagnostics = run_passes(_corpus_project(), ast_passes())
    emitted = {(d.path, d.line, d.code, d.suppressed) for d in diagnostics}
    assert emitted == expected


def test_corpus_covers_every_ast_code():
    """Each RL code both fires somewhere and (for a core code per pass family)
    is proven suppressible — a pass whose bug class the corpus cannot
    reproduce is a pass nobody can trust."""
    expected = _expected_markers()
    fired = {code for (_f, _l, code, _s) in expected}
    ast_codes = {code for factory in ast_passes() for code in factory.codes}
    assert fired == ast_codes
    suppressed = {code for (_f, _l, code, sup) in expected if sup}
    # one honored suppression per pass family (RL1/RL2/RL4) plus the
    # multi-code comma form
    assert {"RL101", "RL102", "RL106", "RL201", "RL401"} <= suppressed


def test_good_files_are_clean():
    diagnostics = run_passes(_corpus_project(), ast_passes())
    clean_files = {"good.py", "writer_good.py", "listener_good.py"}
    assert not [d for d in diagnostics if d.path in clean_files]


# --------------------------------------------------------------------------- #
# suppression mechanics
# --------------------------------------------------------------------------- #
def test_parse_suppressions_forms():
    text = (
        "x = 1  # repro-lint: disable=RL101 -- why\n"
        "y = 2  # repro-lint: disable=RL102,RL106\n"
        "z = 3  # unrelated comment\n"
    )
    assert parse_suppressions(text) == {1: {"RL101"}, 2: {"RL102", "RL106"}}


def test_apply_suppressions_marks_not_drops():
    diags = [Diagnostic("f.py", 1, "RL101", "a"), Diagnostic("f.py", 2, "RL101", "b")]
    marked = apply_suppressions(diags, {1: {"RL101"}})
    assert [d.suppressed for d in marked] == [True, False]
    assert [d.code for d in active(marked)] == ["RL101"]


def test_render_json_is_deterministic_and_sorted():
    diags = [
        Diagnostic("b.py", 9, "RL102", "later"),
        Diagnostic("a.py", 1, "RL101", "first"),
        Diagnostic("a.py", 1, "RL101", "suppressed", suppressed=True),
    ]
    rows = json.loads(render_json(diags))
    assert [r["path"] for r in rows] == ["a.py", "b.py"]
    assert all(not r["suppressed"] for r in rows)
    rows_all = json.loads(render_json(diags, show_suppressed=True))
    assert len(rows_all) == 3


# --------------------------------------------------------------------------- #
# live tree: the acceptance bar
# --------------------------------------------------------------------------- #
def test_live_tree_is_clean_ast_passes():
    project = Project.load(REPO_ROOT)
    diagnostics = run_passes(project, ast_passes())
    assert active(diagnostics) == []


def test_live_tree_suppressions_are_justified():
    """Every suppression in the tree carries a ``--`` justification — the
    convention that keeps ``disable=`` from becoming a blanket mute."""
    project = Project.load(REPO_ROOT)
    bare = []
    for source in project.files:
        for lineno, line in enumerate(source.text.splitlines(), start=1):
            if "repro-lint: disable=" in line and "--" not in line.split("disable=", 1)[1]:
                bare.append(f"{source.rel}:{lineno}")
    assert bare == []


def test_full_registry_clean_including_repo_checks():
    project = Project.load(REPO_ROOT)
    diagnostics = run_passes(project, all_passes())
    assert active(diagnostics) == []


def test_repo_check_passes_skip_fixture_projects():
    project = _corpus_project()
    for factory in REPO_CHECK_PASSES:
        assert factory().run(project) == []


def test_repo_check_error_location_parsing():
    check = REPO_CHECK_PASSES[3]()  # repo-perf-rows, RC004
    located = check._locate("benchmarks/perf_rows.jsonl:12: not valid JSON")
    assert (located.path, located.line, located.code) == (
        "benchmarks/perf_rows.jsonl", 12, "RC004",
    )
    prefixed = check._locate("docs/CLI.md: broken relative link -> nowhere.md")
    assert (prefixed.path, prefixed.line) == ("docs/CLI.md", 1)
    fallback = check._locate("spawn entry point x.y: not a module-level callable")
    assert fallback.path == check.default_path


# --------------------------------------------------------------------------- #
# mutation: the known-bad seed the writer-set pass must catch
# --------------------------------------------------------------------------- #
def test_undeclared_writer_mutation_is_caught(tmp_path):
    mutated_root = tmp_path / "repo"
    shutil.copytree(
        REPO_ROOT / "src",
        mutated_root / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    cc1 = mutated_root / "src" / "repro" / "core" / "cc1.py"
    text = cc1.read_text(encoding="utf-8")
    needle = 'ctx.write(STATUS, LOOKING)'
    assert needle in text
    cc1.write_text(
        text.replace(needle, needle + '\n            ctx.write("Z9", 1)', 1),
        encoding="utf-8",
    )
    project = Project.load(mutated_root)
    findings = active(run_passes(project, [WriterSetConformancePass()]))
    assert any(
        d.code == "RL201" and d.path.endswith("core/cc1.py") and "'Z9'" in d.message
        for d in findings
    ), findings


def test_undeclared_neighbour_read_mutation_is_caught(tmp_path):
    mutated_root = tmp_path / "repo"
    shutil.copytree(
        REPO_ROOT / "src",
        mutated_root / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    cc1 = mutated_root / "src" / "repro" / "core" / "cc1.py"
    text = cc1.read_text(encoding="utf-8")
    # CC1's guards only declare S/P/T of neighbours; reading the CC2/CC3
    # lock flag "L" of a neighbour is exactly the drift RL202 exists for.
    needle = "ctx.read(q, STATUS) == LOOKING for q in edge"
    assert needle in text
    cc1.write_text(
        text.replace(needle, 'ctx.read(q, "L") == LOOKING for q in edge', 1),
        encoding="utf-8",
    )
    project = Project.load(mutated_root)
    findings = active(run_passes(project, [WriterSetConformancePass()]))
    assert any(
        d.code == "RL202" and d.path.endswith("core/cc1.py") and "'L'" in d.message
        for d in findings
    ), findings


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_file_mode_exit_codes(capsys):
    assert lint_main([str(FIXTURES / "good.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert lint_main([str(FIXTURES / "det_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "det_bad.py:20: RL101" in out


def test_cli_json_format(capsys):
    assert lint_main(["--format", "json", str(FIXTURES / "det_bad.py")]) == 1
    rows = json.loads(capsys.readouterr().out)
    assert all(set(r) == {"path", "line", "code", "message", "suppressed"} for r in rows)
    codes = {r["code"] for r in rows}
    assert codes == {"RL101", "RL102", "RL103", "RL104", "RL105", "RL106"}


def test_cli_suppressed_only_file_is_clean_but_visible(capsys):
    assert lint_main([str(FIXTURES / "det_suppressed.py")]) == 0
    assert lint_main(["--show-suppressed", str(FIXTURES / "det_suppressed.py")]) == 0
    out = capsys.readouterr().out
    assert "[suppressed]" in out


def test_cli_pass_selection(capsys):
    # determinism-only over the writer corpus: nothing to report
    assert lint_main(["--passes", "determinism", str(FIXTURES / "writer_bad.py")]) == 0
    capsys.readouterr()
    assert lint_main(["--passes", "writer-sets", str(FIXTURES / "writer_bad.py")]) == 1
    assert "RL201" in capsys.readouterr().out


def test_cli_unknown_pass_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--passes", "no-such-pass"])
    assert excinfo.value.code == 2


def test_cli_list_passes(capsys):
    assert lint_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for name in known_pass_names():
        assert name in out
    for code in ALL_CODES:
        assert code in out


# --------------------------------------------------------------------------- #
# registry hygiene
# --------------------------------------------------------------------------- #
def test_codes_are_unique_across_passes():
    seen = {}
    for pass_ in all_passes():
        for code in pass_.codes:
            assert code not in seen, f"{code} claimed by {seen.get(code)} and {pass_.name}"
            seen[code] = pass_.name
    assert set(seen) == set(ALL_CODES)


def test_every_code_is_documented():
    doc = (REPO_ROOT / "docs" / "STATIC_ANALYSIS.md").read_text(encoding="utf-8")
    for code in ALL_CODES:
        assert code in doc, f"{code} missing from docs/STATIC_ANALYSIS.md"
    for name in known_pass_names():
        assert name in doc, f"pass {name!r} missing from docs/STATIC_ANALYSIS.md"
