"""Spawn-safety corpus (RL3xx).

In fixture projects every file counts as worker-imported, so the
module-level side effects below fire RL301 directly; the declared entry
point ``spawn_bad.missing`` names no top-level def, firing RL303.
"""

import multiprocessing

SPAWN_ENTRY_POINTS = ("spawn_bad.worker", "spawn_bad.missing")  # expect: RL303

configure_global_cache()  # expect: RL301

with open("side_effect.txt") as _handle:  # expect: RL301
    _CONTENT = _handle.read()

multiprocessing.freeze_support()  # ok: well-known import-time idiom


def worker(item):
    return item


def dispatch(pool, items):
    def local_worker(item):
        return item

    pool.imap_unordered(lambda item: item, items)  # expect: RL302
    pool.map(local_worker, items)  # expect: RL302
    process = multiprocessing.Process(target=lambda: None)  # expect: RL302
    pool.map(worker, items)  # ok: module-top-level function
    return process
