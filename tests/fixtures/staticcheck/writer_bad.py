"""Writer-set conformance corpus (RL2xx).

The classes subclass a *local* ``DistributedAlgorithm`` stub — the pass
matches base classes by statically-resolved simple name, so the corpus
exercises it without importing the kernel.
"""


class DistributedAlgorithm:
    """Stand-in for repro.kernel.algorithm.DistributedAlgorithm."""


STATUS = "S"
POINTER = "P"


class UndeclaredWriter(DistributedAlgorithm):
    """Writes a variable missing from its state layout."""

    neighbour_guard_variables = (STATUS, POINTER)

    def initial_state(self, pid):
        return {STATUS: "idle", POINTER: None}

    def actions(self, pid):
        def stmt(ctx):
            ctx.write(STATUS, "looking")  # ok: declared in initial_state
            ctx.write("Z", 1)  # expect: RL201

        return [stmt]


class UndeclaredReader(DistributedAlgorithm):
    """Reads a neighbour variable its declaration does not cover."""

    neighbour_guard_variables = (STATUS,)

    def initial_state(self, pid):
        return {STATUS: "idle", POINTER: None}

    def guard(self, ctx, pid, neighbours):
        fine = all(ctx.read(q, STATUS) == "idle" for q in neighbours)
        own = ctx.read(pid, POINTER)  # ok: own-process read
        bad = any(ctx.read(q, POINTER) for q in neighbours)  # expect: RL202
        return fine and own is None and not bad


class EnvironmentBlind(DistributedAlgorithm):  # expect: RL203
    """Consults the environment but declares it can never matter."""

    neighbour_guard_variables = (STATUS,)
    environment_sensitive_variables = ()

    def initial_state(self, pid):
        return {STATUS: "idle"}

    def guard(self, ctx):
        return ctx.request_in() and ctx.own(STATUS) == "idle"


class DynamicWriter(DistributedAlgorithm):
    """Write target that static analysis cannot resolve."""

    neighbour_guard_variables = (STATUS,)

    def initial_state(self, pid):
        return {STATUS: "idle"}

    def apply(self, ctx, variable):
        ctx.write(variable, 1)  # expect: RL204


class SuppressedWriter(DistributedAlgorithm):
    """The same RL201 bug, suppressed with a justification."""

    def initial_state(self, pid):
        return {STATUS: "idle"}

    def actions(self, pid):
        def stmt(ctx):
            ctx.write("shadow", 0)  # repro-lint: disable=RL201 -- corpus: scratch var, never read back  # expect-suppressed: RL201

        return [stmt]
