"""Listener-protocol corpus (RL4xx)."""


class RaisingListener:
    """Raises an unsanctioned exception inside the scheduler loop."""

    def observe_step(self, configuration, record):
        if record is None:
            raise ValueError("record required")  # expect: RL401
        return configuration


class DesyncingListener:
    """Consumes the incremental delta but never handles epochs."""

    def __init__(self):
        self._writes = []

    def observe_step(self, configuration, record):  # expect: RL402
        delta = record.delta
        self._writes.append(delta.writes)


class SuppressedGuardListener:
    """A deliberate crash-loudly guard, suppressed with a justification."""

    def observe_step(self, configuration, record):
        if configuration is None:
            raise RuntimeError("misconfigured harness")  # repro-lint: disable=RL401 -- corpus: wiring bug must crash  # expect-suppressed: RL401
