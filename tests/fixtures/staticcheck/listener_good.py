"""Listener-protocol corpus: conformant listeners (no findings)."""


class StopRun(Exception):
    """Stand-in for repro.kernel.StopRun."""


class SpecViolationError(StopRun):
    """A sanctioned early-stop signal (derives from StopRun)."""


class EpochAwareListener:
    """Tracks configuration epochs, raises only StopRun subclasses."""

    def __init__(self):
        self._epoch = 0
        self._writes = []

    def observe_step(self, configuration, record):
        delta = record.delta
        if delta.epoch != self._epoch:
            self._epoch = delta.epoch
            self._writes.clear()
        self._writes.append(delta.writes)
        if len(self._writes) > 10_000:
            raise SpecViolationError("bounded run exceeded")


class DelegatingListener:
    """Hands the delta to an epoch-aware stream instead of tracking epochs."""

    def __init__(self, stream):
        self._stream = stream

    def observe_step(self, configuration, record):
        delta = record.delta if record is not None else None
        self._stream.observe(configuration, delta)
