"""Determinism corpus: suppressions are honored (and still reported as such).

Every line here would fire without its ``# repro-lint: disable=`` comment;
the ``# expect-suppressed:`` markers assert the pass still *sees* the
construct but marks it suppressed, so ``--show-suppressed`` and the
self-tests can prove both halves.
"""

import random
import time


def opt_in_timing():
    start = time.perf_counter()  # repro-lint: disable=RL102 -- corpus: timing opt-in  # expect-suppressed: RL102
    return start


def deliberate_module_rng():
    return random.random()  # repro-lint: disable=RL101 -- corpus: justified exception  # expect-suppressed: RL101


def multi_code_line():
    return list({1, 2}), time.time()  # repro-lint: disable=RL106,RL102 -- corpus: comma list  # expect-suppressed: RL106, RL102
