"""A clean file: the deterministic idioms every pass accepts (no findings)."""

import random


def seeded_draws(seed, count):
    rng = random.Random(seed)
    return [rng.random() for _ in range(count)]


def canonical_order(names):
    for name in sorted(set(names)):
        yield name


def stable_join(names):
    return ",".join(sorted({n.strip() for n in names}))


def stable_sort(items):
    return sorted(items, key=lambda item: (len(item), item))
