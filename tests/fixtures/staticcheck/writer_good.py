"""Writer-set conformance corpus: a fully conformant algorithm (no findings)."""


class DistributedAlgorithm:
    """Stand-in for repro.kernel.algorithm.DistributedAlgorithm."""


STATUS = "S"
POINTER = "P"
TOKEN_FLAG = "T"


class Conformant(DistributedAlgorithm):
    neighbour_guard_variables = (STATUS, POINTER, TOKEN_FLAG)
    environment_sensitive_variables = (STATUS,)

    def initial_state(self, pid):
        return {STATUS: "idle", POINTER: None, TOKEN_FLAG: False}

    def guard(self, ctx, pid, neighbours):
        if not ctx.request_in():
            return False
        return all(ctx.read(q, STATUS) == "idle" for q in neighbours)

    def actions(self, pid):
        def stmt(ctx):
            ctx.write(STATUS, "looking")
            ctx.write(POINTER, None)
            ctx.write(TOKEN_FLAG, False)

        return [stmt]
