"""Determinism corpus (RL1xx): every construct the pass must reject.

Each offending line carries an expect-marker comment; the test harness
parses the markers and asserts the pass emits *exactly* those diagnostics.
All constructs live inside functions so the spawn-safety pass (RL301,
module-level side effects) stays quiet on this file.
"""

import datetime as dt
import os
import random
import secrets
import time
import uuid
from datetime import datetime
from time import perf_counter


def unseeded_randomness():
    a = random.random()  # expect: RL101
    b = random.randint(0, 7)  # expect: RL101
    rng = random.Random()  # expect: RL101
    seeded = random.Random(42)  # ok: seeded instance
    return a, b, rng, seeded.random()


def wall_clock():
    t0 = time.time()  # expect: RL102
    t1 = time.perf_counter()  # expect: RL102
    t2 = perf_counter()  # expect: RL102
    return t0, t1, t2


def ambient_dates():
    now = datetime.now()  # expect: RL103
    also = dt.datetime.now()  # expect: RL103
    return now, also


def entropy():
    raw = os.urandom(8)  # expect: RL104
    ident = uuid.uuid4()  # expect: RL104
    tok = secrets.token_bytes(4)  # expect: RL104
    return raw, ident, tok


def hash_ordering(items):
    ordered = sorted(items, key=hash)  # expect: RL105
    items.sort(key=lambda x: hash(x))  # expect: RL105
    return ordered


def set_iteration(names):
    for name in {"b", "a", "c"}:  # expect: RL106
        print(name)
    joined = ",".join({n for n in names})  # expect: RL106
    as_list = list(set(names))  # expect: RL106
    pairs = [(n, 1) for n in set(names)]  # expect: RL106
    stable = sorted(set(names))  # ok: sorted() restores a canonical order
    return joined, as_list, pairs, stable
