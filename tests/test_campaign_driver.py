"""Per-stage tests for the layered campaign driver (`repro.campaign.driver`).

The pipeline is plan → dispatch → collect → finalize; each stage is tested
in isolation here, then the differential sweep asserts the one property the
decomposition must never cost: the aggregate JSONL rows are **byte-identical**
across every frontend combination — worker counts × start methods × resume ×
cache × static shards × the batched engine.

The service-facing contract is pinned too: `CampaignDriver` round-trips a
campaign programmatically (no argparse anywhere), and `cli._cmd_campaign`
stays a thin adapter (line-count ceiling; the RC010 repo check enforces the
import side of the same invariant).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import threading

import pytest

from repro.campaign import (
    CampaignDriver,
    CampaignPlan,
    CampaignResult,
    BufferedSink,
    CampaignSpec,
    Collector,
    Finalizer,
    PoolExecutor,
    ResumeError,
    RowCollector,
    RunCache,
    SerialExecutor,
    expand_jobs,
    run_campaign,
    run_shard,
)
from repro.campaign.sinks import row_line
from repro.kernel.batched import numpy_available


def _spec(**overrides) -> CampaignSpec:
    defaults = dict(
        scenarios=("figure1", "path-6"),
        algorithms=("cc1",),
        seeds=(1, 2),
        max_steps=60,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture(scope="module")
def matrix():
    """4 expanded jobs, the serial baseline result and its JSONL lines."""
    jobs = expand_jobs(_spec())
    baseline = run_campaign(jobs, jobs=1)
    return jobs, baseline, baseline.jsonl_lines()


class TestCampaignPlan:
    def test_expands_spec_and_adopts_prebuilt_jobs(self, matrix):
        jobs, _, _ = matrix
        assert [j.index for j in CampaignPlan(_spec()).jobs] == [j.index for j in jobs]
        plan = CampaignPlan(jobs)
        assert plan.jobs == list(jobs)
        assert plan.todo == list(jobs) and plan.cached_results == []

    def test_resume_reconciliation(self, matrix):
        jobs, _, lines = matrix
        rows = [json.loads(line) for line in lines]
        plan = CampaignPlan(jobs, prior_rows=[rows[0], rows[2]])
        assert [j.index for j in plan.remaining] == [1, 3]
        assert plan.base_prior == [rows[0], rows[2]] and plan.extra_prior == []
        assert plan.todo == plan.remaining

    def test_extra_rows_split_out_of_the_base_matrix(self, matrix):
        jobs, _, lines = matrix
        extra = dict(json.loads(lines[0]), job=len(jobs) + 3)
        plan = CampaignPlan(jobs, prior_rows=[extra])
        assert plan.base_prior == [] and plan.extra_prior == [extra]
        # Extra rows answer no base job: the whole matrix is still pending.
        assert len(plan.remaining) == len(jobs)

    def test_foreign_rows_are_rejected(self, matrix):
        jobs, _, lines = matrix
        foreign = dict(json.loads(lines[0]), seed=999)
        with pytest.raises(ResumeError, match="does not match the campaign matrix"):
            CampaignPlan(jobs, prior_rows=[foreign])

    def test_static_shard_selection(self, matrix):
        jobs, _, lines = matrix
        plan = CampaignPlan(jobs, shard=(0, 2))
        assert plan.selected == list(jobs[:2])
        # Prior rows thin the shard's pending set but not its selection.
        resumed = CampaignPlan(jobs, prior_rows=[json.loads(lines[0])], shard=(0, 2))
        assert resumed.selected == list(jobs[:2])
        assert [j.index for j in resumed.pending] == [1]

    def test_cache_probe_splits_hits_from_todo(self, matrix, tmp_path):
        jobs, baseline, lines = matrix
        cache = RunCache(str(tmp_path / "cache"))
        cache.store(baseline.results[1])
        plan = CampaignPlan(jobs, cache=cache)
        assert [r.index for r in plan.cached_results] == [1]
        assert [j.index for j in plan.todo] == [0, 2, 3]
        # The hit is byte-identical by construction.
        assert row_line(plan.cached_results[0].row) == lines[1]


class TestExecutors:
    def test_serial_executor_feeds_collector_in_job_order(self, matrix):
        jobs, _, lines = matrix
        collector = RowCollector()
        assert SerialExecutor().run(jobs, collector) == 1
        assert [row_line(r.row) for r in collector.finish()] == lines

    def test_pool_executor_matches_serial_byte_for_byte(self, matrix):
        jobs, _, lines = matrix
        collector = RowCollector()
        workers = PoolExecutor(2, mp_context="fork").run(jobs, collector)
        assert workers == 2
        assert [row_line(r.row) for r in collector.finish()] == lines

    def test_pool_executor_guards(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            PoolExecutor(0)
        # An empty todo never builds a pool.
        assert PoolExecutor(8).run([], RowCollector()) == 1


class TestRowCollector:
    def test_fan_out_reaches_every_surface_in_order(self, matrix, tmp_path):
        _, baseline, lines = matrix
        sink = BufferedSink()
        cache = RunCache(str(tmp_path / "cache"))
        seen = []
        collector = RowCollector(
            sink=sink,
            cache=cache,
            progress=lambda result, done, total: seen.append((result.index, done, total)),
            total=4,
        )
        collector.collect(baseline.results[1])
        collector.collect(baseline.results[0])
        assert cache.stored == 2
        assert [row_line(row) for row in sink.rows] == [lines[1], lines[0]]
        assert seen == [(1, 1, 4), (0, 2, 4)]
        assert len(collector.store) == 2
        # finish() restores job order after the completion-order drain.
        assert [r.index for r in collector.finish()] == [0, 1]

    def test_cached_rows_stream_but_are_never_restored(self, matrix, tmp_path):
        _, baseline, _ = matrix
        sink = BufferedSink()
        cache = RunCache(str(tmp_path / "cache"))
        collector = RowCollector(sink=sink, cache=cache)
        collector.add_cached(baseline.results[0])
        assert cache.stored == 0 and len(sink.rows) == 1
        assert [r.index for r in collector.results] == [0]

    def test_absorb_prior_joins_the_aggregate_only(self, matrix):
        _, baseline, _ = matrix
        sink = BufferedSink()
        collector = RowCollector(sink=sink)
        collector.absorb_prior(baseline.results[:2])
        assert len(collector.store) == 2
        assert collector.results == [] and sink.rows == []


class TestFinalizer:
    def _result(self, matrix, status=None):
        jobs, baseline, _ = matrix
        results = list(baseline.results)
        if status is not None:
            results[0] = dataclasses.replace(
                results[0], row=dict(results[0].row, status=status), ok=False
            )
        return CampaignResult(jobs=list(jobs), results=results, workers=1, elapsed_seconds=0.5)

    def test_exit_codes(self, matrix):
        assert Finalizer().finalize(self._result(matrix)).exit_code == 0
        assert Finalizer().finalize(self._result(matrix, "violation")).exit_code == 1
        # Error rows dominate violations.
        assert Finalizer().finalize(self._result(matrix, "error")).exit_code == 3

    def test_out_rewrite_and_messages(self, matrix, tmp_path):
        _, _, lines = matrix
        out = tmp_path / "rows.jsonl"
        said = []
        outcome = Finalizer(out=str(out), info=said.append).finalize(self._result(matrix))
        assert out.read_text().splitlines() == lines
        assert outcome.summary == said[0]
        assert f"wrote {len(lines)} rows to {out}" in said

    def test_verbatim_rows_mode_writes_before_summary(self, matrix, tmp_path):
        """The collect-service path: whatever arrived survives byte-for-byte."""
        _, _, lines = matrix
        rows = [dict(json.loads(line), extra_field=1) for line in lines]
        out = tmp_path / "merged.jsonl"
        said = []
        Finalizer(out=str(out), info=said.append, prefix="collect").finalize(
            self._result(matrix), rows=rows, write_before_summary=True
        )
        assert out.read_text().splitlines() == [row_line(row) for row in rows]
        assert f"wrote {len(rows)} rows to {out}" in said

    def test_cache_stats_line(self, matrix, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        said = []
        Finalizer(info=said.append).finalize(self._result(matrix), cache=cache)
        assert any("cache" in line and "0 hit(s)" in line for line in said)


class TestCampaignDriverService:
    """The future service layer's contract: no argparse anywhere."""

    def test_programmatic_round_trip(self, matrix, tmp_path, monkeypatch):
        _, _, lines = matrix
        out = tmp_path / "rows.jsonl"
        cache = RunCache(str(tmp_path / "cache"))
        said = []
        driver = CampaignDriver(
            _spec(), cache=cache, out=str(out), info=said.append
        )
        outcome = driver.run()
        assert outcome.exit_code == 0
        assert out.read_text().splitlines() == lines
        assert outcome.result.store is not None and outcome.result.summary_rows()
        assert any(line.startswith("campaign: cache") for line in said)
        # Second submission over the same cache executes nothing: every job
        # short-circuits to a stored, byte-identical row.
        import repro.campaign.driver as driver_module

        def explode(job):  # pragma: no cover - tripwire
            raise AssertionError("cache hit expected; execute_job was called")

        monkeypatch.setattr(driver_module, "execute_job", explode)
        rerun = CampaignDriver(
            _spec(), cache=RunCache(str(tmp_path / "cache")), out=str(tmp_path / "rows2.jsonl")
        )
        assert rerun.run().result.jsonl_lines() == lines

    def test_resume_executes_only_missing_jobs(self, matrix, monkeypatch):
        jobs, _, lines = matrix
        rows = [json.loads(line) for line in lines]
        import repro.campaign.driver as driver_module

        real = driver_module.execute_job
        ran = []

        def counting(job):
            ran.append(job.index)
            return real(job)

        monkeypatch.setattr(driver_module, "execute_job", counting)
        driver = CampaignDriver(jobs, prior_rows=[rows[0], rows[3]])
        result = driver.execute()
        assert sorted(ran) == [1, 2]
        assert result.jsonl_lines() == lines


def test_cmd_campaign_is_a_thin_adapter():
    """The CLI command maps flags onto the driver — nothing else.

    The ceiling keeps orchestration from creeping back into argparse land;
    the RC010 repo check pins the import side of the same invariant.
    """
    from repro import cli

    assert len(inspect.getsource(cli._cmd_campaign).splitlines()) < 80


class TestDifferentialByteIdentity:
    """One sweep: every dispatch/persistence combination, one set of bytes."""

    def test_workers_and_start_methods(self, matrix):
        jobs, _, lines = matrix
        assert run_campaign(jobs, jobs=2, mp_context="fork").jsonl_lines() == lines
        assert run_campaign(jobs, jobs=2, mp_context="spawn").jsonl_lines() == lines

    def test_resume_and_cache_compose(self, matrix, tmp_path):
        jobs, _, lines = matrix
        rows = [json.loads(line) for line in lines]
        cache = RunCache(str(tmp_path / "cache"))
        first = CampaignDriver(jobs, prior_rows=rows[:2], cache=cache).execute()
        assert first.jsonl_lines() == lines
        # The cache now holds the executed half; a fresh resume of the
        # *other* half must be all hits and still byte-identical.
        second = CampaignDriver(
            jobs, prior_rows=rows[2:], cache=RunCache(str(tmp_path / "cache"))
        ).execute()
        assert second.jsonl_lines() == lines

    def test_static_shards_merge_to_the_baseline(self, matrix):
        jobs, _, lines = matrix
        merged = {}
        for index in range(2):
            result = CampaignDriver(jobs, shard=(index, 2)).execute()
            for job_result in result.results:
                merged[job_result.index] = row_line(job_result.row)
        assert [merged[i] for i in sorted(merged)] == lines

    def test_collector_shards_merge_to_the_baseline(self, matrix):
        jobs, _, lines = matrix
        with Collector(jobs, "tcp:127.0.0.1:0") as collector:
            threads = [
                threading.Thread(
                    target=run_shard,
                    args=(collector.address, jobs),
                    kwargs=dict(shard=(i, 2)),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            rows = collector.run(timeout=60)
            for thread in threads:
                thread.join(timeout=10)
        assert [row_line(row) for row in rows] == lines

    @pytest.mark.skipif(
        not numpy_available(), reason="batched engine needs the repro-cc[batched] extra"
    )
    def test_batched_engine_keeps_the_contract(self):
        batched_jobs = expand_jobs(_spec(engines=("batched",), max_steps=50))
        serial = run_campaign(batched_jobs, jobs=1).jsonl_lines()
        pooled = run_campaign(batched_jobs, jobs=2, mp_context="fork").jsonl_lines()
        assert serial == pooled
