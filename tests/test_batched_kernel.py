"""Unit tests for the batched lockstep engine and its campaign integration.

The exhaustive lane-identity proof lives in the differential harness
(``test_differential_harness.py`` batched axis); this file covers the
engine's own contracts: the numpy guard and its message, compile-time
coverage validation (``BatchedUnsupported``), raw-vs-record equivalence,
terminal/stopped lanes dropping out of the lockstep, fault-injection epochs,
and the campaign grouping rules.
"""

import json

import pytest

np = pytest.importorskip("numpy", reason="batched engine tests need the repro-cc[batched] extra")

from repro.campaign import CampaignSpec, RunJob, execute_job, execute_job_group, group_jobs
from repro.campaign.batched import MAX_GROUP_LANES, group_key
from repro.core.batched_program import compile_program
from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.generators import figure1_hypergraph, path_of_committees
from repro.kernel.batched import (
    BatchedScheduler,
    BatchedUnsupported,
    NUMPY_HINT,
    numpy_available,
    require_numpy,
)
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import StopRun
from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
    ProbabilisticRequestEnvironment,
)


def _algorithm(hypergraph=None, algorithm="cc2", token="ring"):
    return CommitteeCoordinator(
        hypergraph if hypergraph is not None else figure1_hypergraph(),
        algorithm=algorithm,
        token=token,
        seed=0,
        engine="incremental",
    ).algorithm


def _job(**overrides):
    base = dict(
        index=0,
        scenario="figure1",
        random_seed=None,
        algorithm="cc2",
        token="ring",
        engine="batched",
        daemon="weakly_fair",
        environment="always",
        discussion_steps=1,
        seed=0,
        max_steps=120,
        arbitrary_start=False,
        fault_every=0,
        fault_fraction=0.5,
        grace_steps=None,
    )
    base.update(overrides)
    return RunJob(**base)


class TestNumpyGuard:
    def test_numpy_available_here(self):
        # importorskip above means this environment has the extra.
        assert numpy_available()
        assert require_numpy() is np

    def test_hint_names_the_extra(self):
        # The graceful-degradation contract: every "no numpy" message tells
        # the user exactly what to install.
        assert "repro-cc[batched]" in NUMPY_HINT
        assert "numpy" in NUMPY_HINT

    def test_require_numpy_raises_hint_without_numpy(self, monkeypatch):
        import repro.kernel.batched as batched_module

        monkeypatch.setattr(batched_module, "_np", None)
        assert not batched_module.numpy_available()
        with pytest.raises(BatchedUnsupported, match=r"repro-cc\[batched\]"):
            batched_module.require_numpy()

    def test_campaign_spec_rejects_batched_without_numpy(self, monkeypatch):
        import repro.kernel.batched as batched_module

        monkeypatch.setattr(batched_module, "_np", None)
        with pytest.raises(ValueError, match=r"repro-cc\[batched\]"):
            CampaignSpec(scenarios=("figure1",), engines=("batched",))


class TestCompileValidation:
    def test_supported_scenario_compiles(self):
        program = compile_program(_algorithm(), AlwaysRequestingEnvironment(1))
        assert program.kind == "cc2"

    def test_probabilistic_environment_unsupported(self):
        # Its RNG draws happen inside observe() in process order — a
        # vectorized update cannot replicate the stream, so the compile
        # refuses and callers fall back.
        with pytest.raises(BatchedUnsupported):
            compile_program(_algorithm(), ProbabilisticRequestEnvironment(0.5, 1, seed=3))

    def test_unknown_algorithm_subclass_unsupported(self):
        algorithm = _algorithm()

        class Widened(type(algorithm)):  # subclass, not the exact class
            pass

        widened = Widened(algorithm.hypergraph, algorithm.token)
        with pytest.raises(BatchedUnsupported):
            compile_program(widened, AlwaysRequestingEnvironment(1))

    def test_encode_rejects_out_of_domain_status(self):
        algorithm = _algorithm()
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        initial = algorithm.initial_configuration()
        pid = sorted(initial.to_dict())[0]
        bad = initial.updated({pid: {"S": "meditating"}})
        with pytest.raises(BatchedUnsupported):
            program.encode([bad])


class TestBatchedScheduler:
    def test_raw_mode_matches_record_mode(self):
        algorithm = _algorithm(path_of_committees(4), "cc2", "tree")
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        lanes = 5

        def run(record):
            initials = [algorithm.initial_configuration() for _ in range(lanes)]
            daemons = [default_daemon(seed=k) for k in range(lanes)]
            scheduler = BatchedScheduler(program, initials, daemons, record=record)
            results = scheduler.run(150)
            finals = [
                r.configuration
                if record
                else scheduler.program.decode_lane(scheduler.state, r.lane)
                for r in results
            ]
            return [(r.steps, r.rounds, r.terminated, r.stop_reason) for r in results], finals

        recorded, rec_finals = run(record=True)
        raw, raw_finals = run(record=False)
        assert recorded == raw
        assert rec_finals == raw_finals

    def test_raw_mode_has_no_traces(self):
        algorithm = _algorithm()
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        scheduler = BatchedScheduler(
            program,
            [algorithm.initial_configuration()],
            [SynchronousDaemon()],
            record=False,
        )
        (result,) = scheduler.run(20)
        assert result.trace is None and result.configuration is None
        assert result.steps == 20

    def test_listeners_require_record_mode(self):
        algorithm = _algorithm()
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        with pytest.raises(ValueError, match="record=True"):
            BatchedScheduler(
                program,
                [algorithm.initial_configuration()],
                [SynchronousDaemon()],
                step_listeners=[()],
                record=False,
            )

    def test_listener_stop_run_halts_only_its_lane(self):
        algorithm = _algorithm()
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        initials = [algorithm.initial_configuration() for _ in range(3)]
        daemons = [SynchronousDaemon() for _ in range(3)]

        def stopper(configuration, record):
            if record is not None and record.index >= 4:
                raise StopRun("early-stop")

        scheduler = BatchedScheduler(
            program,
            initials,
            daemons,
            step_listeners=[None, (stopper,), None],
            record=True,
        )
        results = scheduler.run(30)
        assert results[1].stop_reason == "early-stop"
        assert results[1].steps == 5  # stopped after committing step index 4
        assert not results[1].terminated
        for lane in (0, 2):
            assert results[lane].stop_reason in ("max_steps", "terminal")
            assert results[lane].steps > results[1].steps

    def test_fault_injection_bumps_lane_epoch(self):
        algorithm = _algorithm()
        program = compile_program(algorithm, AlwaysRequestingEnvironment(1))
        lanes = 2
        initials = [algorithm.initial_configuration() for _ in range(lanes)]
        daemons = [default_daemon(seed=k) for k in range(lanes)]
        injectors = [
            FaultInjector(algorithm, fraction=1.0, seed=1),
            None,  # lane 1 rides the same schedule but is never corrupted
        ]
        scheduler = BatchedScheduler(
            program, initials, daemons, injectors=injectors, fault_every=10
        )
        results = scheduler.run(35)
        assert results[0].epoch >= 3  # bursts at steps 10, 20, 30
        assert results[1].epoch == 0
        # The epoch travels in the step deltas after each swap.
        deltas = [record.delta.epoch for record in results[0].trace.steps]
        assert max(deltas) == results[0].epoch

    def test_arbitrary_starts_encode_round_trip(self):
        algorithm = _algorithm(algorithm="cc3", token="ring")
        program = compile_program(algorithm, BurstyRequestEnvironment(5, 3, 1))
        initials = [arbitrary_configuration(algorithm, seed=k) for k in range(4)]
        state = program.encode(initials)
        for lane, initial in enumerate(initials):
            assert program.decode_lane(state, lane) == initial


class TestCampaignGrouping:
    def test_group_key_ignores_only_index_and_seed(self):
        a = _job(index=0, seed=1)
        b = _job(index=7, seed=12)
        c = _job(index=8, seed=12, daemon="synchronous")
        assert group_key(a) == group_key(b)
        assert group_key(a) != group_key(c)

    def test_consecutive_same_cell_jobs_share_a_group(self):
        jobs = [_job(index=k, seed=k) for k in range(6)]
        groups = group_jobs(jobs)
        assert [len(g) for g in groups] == [6]

    def test_non_batched_jobs_stay_singletons(self):
        jobs = [
            _job(index=0, seed=0),
            _job(index=1, seed=1, engine="incremental"),
            _job(index=2, seed=2),
        ]
        groups = group_jobs(jobs)
        # The incremental job splits the batched run: order preservation
        # beats merging across it.
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_groups_cap_at_max_lanes(self):
        jobs = [_job(index=k, seed=k) for k in range(MAX_GROUP_LANES + 3)]
        groups = group_jobs(jobs)
        assert [len(g) for g in groups] == [MAX_GROUP_LANES, 3]

    def test_execute_job_routes_batched(self):
        result = execute_job(_job())
        assert result.row["engine"] == "batched"
        assert result.row["status"] in ("ok", "violation")

    def test_group_rows_match_solo_rows(self):
        jobs = [_job(index=k, seed=k) for k in range(5)]
        grouped = execute_job_group(jobs)
        for job, result in zip(jobs, grouped):
            solo = execute_job(job)
            assert result.output_row() == solo.output_row()

    def test_fallback_preserves_engine_identity_field(self):
        # Probabilistic env is outside coverage: the group falls back to
        # solo incremental runs, but the row still says engine="batched" —
        # identity describes the matrix cell.
        jobs = [_job(index=k, seed=k, environment="probabilistic:0.6") for k in range(3)]
        results = execute_job_group(jobs)
        for job, result in zip(jobs, results):
            assert result.row["engine"] == "batched"
            assert result.row["status"] in ("ok", "violation")
            incremental = execute_job(
                RunJob(**{**job.__dict__, "engine": "incremental"})
            )
            expected = dict(incremental.output_row())
            expected["engine"] = "batched"
            assert result.output_row() == expected

    def test_rows_serialize_to_valid_json(self):
        result = execute_job(_job(seed=3))
        line = json.dumps(result.output_row(), sort_keys=True)
        assert json.loads(line)["seed"] == 3
