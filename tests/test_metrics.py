"""Tests for the metrics package (collector, fair concurrency, waiting time, throughput)."""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import figure1_hypergraph, path_of_committees
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.metrics.collector import collect_metrics
from repro.metrics.concurrency import degree_of_fair_concurrency
from repro.metrics.throughput import measure_throughput
from repro.metrics.waiting_time import measure_waiting_time, waiting_spells
from repro.spec.fairness import professor_fairness_counts
from repro.workloads.request_models import AlwaysRequestingEnvironment

from tests.conftest import make_cc1, make_cc2


@pytest.fixture(scope="module")
def cc2_run():
    hypergraph = figure1_hypergraph()
    algo = make_cc2(hypergraph)
    scheduler = Scheduler(
        algo,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=3),
    )
    return hypergraph, algo, scheduler.run(max_steps=900)


class TestCollector:
    def test_metrics_shape(self, cc2_run):
        hypergraph, _, result = cc2_run
        metrics = collect_metrics(result.trace, hypergraph)
        assert metrics.steps == result.steps
        assert metrics.meetings_convened > 0
        assert 0 < metrics.mean_concurrency <= metrics.peak_concurrency
        assert 0.0 <= metrics.jain_fairness_index <= 1.0

    def test_as_row_round_trips(self, cc2_run):
        hypergraph, _, result = cc2_run
        row = collect_metrics(result.trace, hypergraph).as_row()
        assert set(row) == {
            "steps", "rounds", "meetings", "peak_conc", "mean_conc",
            "min_part", "max_part", "jain",
        }

    def test_action_counts_included(self, cc2_run):
        hypergraph, _, result = cc2_run
        metrics = collect_metrics(result.trace, hypergraph)
        assert sum(metrics.action_counts.values()) > 0


class TestFairnessSummary:
    def test_jain_index_bounds(self, cc2_run):
        hypergraph, _, result = cc2_run
        summary = professor_fairness_counts(result.trace, hypergraph)
        assert 0.0 < summary.professor_jain_index() <= 1.0

    def test_jain_index_of_empty_trace_is_zero(self, cc2_run):
        hypergraph, algo, _ = cc2_run
        from repro.kernel.trace import Trace

        empty = Trace(algo.initial_configuration())
        summary = professor_fairness_counts(empty, hypergraph)
        assert summary.professor_jain_index() == 0.0
        assert summary.min_professor_participations == 0


class TestDegreeOfFairConcurrency:
    def test_samples_and_bounds_reported(self):
        hypergraph = path_of_committees(3)
        algo = make_cc2(hypergraph)
        result = degree_of_fair_concurrency(algo, trials=2, max_steps=1500, seed=1)
        assert len(result.samples) == 4  # 2 clean + 2 arbitrary starts
        assert result.observed_min <= result.observed_max
        assert result.respects_theorem4

    def test_row_keys(self):
        hypergraph = path_of_committees(3)
        algo = make_cc2(hypergraph)
        result = degree_of_fair_concurrency(
            algo, trials=1, max_steps=800, seed=1, include_arbitrary_starts=False
        )
        assert set(result.as_row()) == {
            "observed_min", "observed_max", "thm4_bound", "thm5_bound", "thm7_bound", "thm8_bound",
        }


class TestWaitingTime:
    def test_waiting_time_positive_and_bounded(self):
        hypergraph = figure1_hypergraph()
        algo = make_cc2(hypergraph)
        result = measure_waiting_time(algo, max_disc=2, max_steps=1500, seed=2)
        assert result.max_wait_steps > 0
        assert result.mean_wait_steps <= result.max_wait_steps
        assert result.n == hypergraph.n
        assert result.max_disc == 2
        assert result.theorem6_reference == 2 * hypergraph.n

    def test_waiting_spells_cover_all_professors(self):
        hypergraph = figure1_hypergraph()
        algo = make_cc2(hypergraph)
        scheduler = Scheduler(
            algo,
            environment=AlwaysRequestingEnvironment(discussion_steps=1),
            daemon=default_daemon(seed=5),
        )
        result = scheduler.run(max_steps=800)
        spells = waiting_spells(result.trace, hypergraph)
        assert set(spells) == set(hypergraph.vertices)
        assert all(length >= 0 for lengths in spells.values() for length in lengths)

    def test_as_row(self):
        hypergraph = path_of_committees(2)
        algo = make_cc2(hypergraph)
        row = measure_waiting_time(algo, max_disc=1, max_steps=600, seed=1).as_row()
        assert "max_wait_rounds" in row and "maxDisc*n" in row


class TestThroughput:
    def test_throughput_of_cc1_and_cc2(self):
        hypergraph = figure1_hypergraph()
        for make in (make_cc1, make_cc2):
            algo = make(hypergraph)
            result = measure_throughput(algo, max_steps=800, seed=1)
            assert result.meetings_convened > 0
            assert result.meetings_per_round > 0
            assert result.peak_concurrency >= 1

    def test_row_keys(self):
        hypergraph = path_of_committees(2)
        algo = make_cc1(hypergraph)
        row = measure_throughput(algo, max_steps=500, seed=1).as_row()
        assert "meetings/round" in row and "jain" in row
