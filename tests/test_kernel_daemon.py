"""Tests for daemons (schedulers of the atomic-state model)."""

from __future__ import annotations

import pytest

from repro.kernel.configuration import Configuration
from repro.kernel.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
    default_daemon,
)

CFG = Configuration({pid: {"x": 0} for pid in range(1, 6)})
ENABLED = (1, 2, 3, 4, 5)


class TestSynchronousDaemon:
    def test_selects_everyone(self):
        assert SynchronousDaemon().select(ENABLED, CFG, 0) == frozenset(ENABLED)

    def test_subset_of_enabled(self):
        chosen = SynchronousDaemon().select((2, 4), CFG, 0)
        assert chosen == frozenset({2, 4})


class TestCentralDaemon:
    def test_selects_exactly_one(self):
        daemon = CentralDaemon()
        for step in range(10):
            chosen = daemon.select(ENABLED, CFG, step)
            assert len(chosen) == 1
            assert chosen <= set(ENABLED)

    def test_round_robin_cycles_through_all(self):
        daemon = CentralDaemon(policy="round_robin")
        seen = set()
        for step in range(10):
            seen |= daemon.select(ENABLED, CFG, step)
        assert seen == set(ENABLED)

    def test_random_policy_selects_enabled(self):
        daemon = CentralDaemon(policy="random", seed=3)
        for step in range(20):
            chosen = daemon.select((2, 5), CFG, step)
            assert len(chosen) == 1 and chosen <= {2, 5}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CentralDaemon(policy="bogus")

    def test_reset(self):
        daemon = CentralDaemon()
        daemon.select(ENABLED, CFG, 0)
        daemon.reset()
        assert daemon.select((1,), CFG, 0) == frozenset({1})


class TestLocallyCentralDaemon:
    NEIGHBORS = {1: (2,), 2: (1, 3), 3: (2,), 4: (5,), 5: (4,)}

    def test_no_two_neighbours_selected(self):
        daemon = LocallyCentralDaemon(self.NEIGHBORS, seed=1)
        for step in range(30):
            chosen = daemon.select(ENABLED, CFG, step)
            assert chosen
            for a in chosen:
                for b in chosen:
                    if a != b:
                        assert b not in self.NEIGHBORS.get(a, ())

    def test_selection_is_nonempty(self):
        daemon = LocallyCentralDaemon(self.NEIGHBORS, seed=2)
        assert daemon.select((2,), CFG, 0) == frozenset({2})


class TestDistributedRandomDaemon:
    def test_always_selects_at_least_one(self):
        daemon = DistributedRandomDaemon(probability=0.05, seed=0)
        for step in range(50):
            assert daemon.select(ENABLED, CFG, step)

    def test_probability_one_selects_all(self):
        daemon = DistributedRandomDaemon(probability=1.0, seed=0)
        assert daemon.select(ENABLED, CFG, 0) == frozenset(ENABLED)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DistributedRandomDaemon(probability=0.0)
        with pytest.raises(ValueError):
            DistributedRandomDaemon(probability=1.5)


class TestAdversarialDaemon:
    def test_follows_strategy(self):
        daemon = AdversarialDaemon(lambda enabled, cfg, step: [3])
        assert daemon.select(ENABLED, CFG, 0) == frozenset({3})

    def test_falls_back_when_strategy_invalid(self):
        daemon = AdversarialDaemon(lambda enabled, cfg, step: [99])
        chosen = daemon.select(ENABLED, CFG, 0)
        assert len(chosen) == 1 and chosen <= set(ENABLED)

    def test_intersects_with_enabled(self):
        daemon = AdversarialDaemon(lambda enabled, cfg, step: [1, 99])
        assert daemon.select(ENABLED, CFG, 0) == frozenset({1})


class TestWeaklyFairDaemon:
    class _NeverPickFive:
        """A base daemon that never selects process 5."""

        def reset(self):
            pass

        def select(self, enabled, cfg, step):
            others = [p for p in enabled if p != 5]
            return frozenset(others[:1] or list(enabled)[:1])

    def test_starving_process_is_eventually_forced(self):
        daemon = WeaklyFairDaemon(self._NeverPickFive(), patience=4)
        selected_five = False
        for step in range(12):
            chosen = daemon.select(ENABLED, CFG, step)
            if 5 in chosen:
                selected_five = True
                break
        assert selected_five

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            WeaklyFairDaemon(SynchronousDaemon(), patience=0)

    def test_counters_reset_when_process_disabled(self):
        daemon = WeaklyFairDaemon(self._NeverPickFive(), patience=3)
        daemon.select(ENABLED, CFG, 0)
        daemon.select(ENABLED, CFG, 1)
        # Process 5 becomes disabled: its starvation counter must be dropped.
        daemon.select((1, 2), CFG, 2)
        chosen = daemon.select(ENABLED, CFG, 3)
        # 5 was not owed a forced move right away after re-enabling.
        assert 5 not in chosen

    def test_default_daemon_is_weakly_fair(self):
        daemon = default_daemon(seed=1)
        assert isinstance(daemon, WeaklyFairDaemon)
