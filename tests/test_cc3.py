"""Tests for Algorithm ``CC3 ∘ TC`` (Section 5.4): Committee Fairness."""

from __future__ import annotations

import random

import pytest

from repro.core.cc3 import CURSOR, CC3Algorithm
from repro.core.states import LOOKING, POINTER, STATUS
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.metrics.concurrency import degree_of_fair_concurrency
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.fairness import professor_fairness_counts
from repro.spec.properties import check_exclusion, check_synchronization
from repro.spec.stabilization import snap_stabilization_sweep
from repro.workloads.request_models import AlwaysRequestingEnvironment

from tests.conftest import make_cc3


def run_cc3(hypergraph, steps=1500, seed=1, arbitrary=False):
    algo = make_cc3(hypergraph)
    initial = None
    if arbitrary:
        initial = algo.arbitrary_configuration(random.Random(seed))
    scheduler = Scheduler(
        algo,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=seed),
        initial_configuration=initial,
    )
    return algo, scheduler.run(max_steps=steps)


class TestVariables:
    def test_cursor_variable_exists(self, fig1):
        algo = make_cc3(fig1)
        assert algo.initial_state(1)[CURSOR] == 0

    def test_arbitrary_cursor_is_integer(self, fig1, rng):
        algo = make_cc3(fig1)
        for pid in fig1.vertices:
            assert isinstance(algo.arbitrary_state(pid, rng)[CURSOR], int)

    def test_inherits_cc2_actions(self, fig1):
        algo = make_cc3(fig1)
        labels = [a.label for a in algo.actions(1)]
        assert "Step11" in labels and "Stab" in labels


class TestTargetSelection:
    def test_token_target_follows_cursor(self, fig1):
        from repro.kernel.algorithm import ActionContext

        algo = make_cc3(fig1)
        env = AlwaysRequestingEnvironment()
        cfg = algo.initial_configuration()
        edges = algo.incident(2)
        for cursor in range(len(edges) + 2):
            cfg2 = cfg.updated({2: {CURSOR: cursor}})
            ctx = ActionContext(2, cfg2, env)
            target = algo.token_target_edges(ctx, 2)
            assert target == (edges[cursor % len(edges)],)

    def test_corrupted_cursor_is_tolerated(self, fig1):
        from repro.kernel.algorithm import ActionContext

        algo = make_cc3(fig1)
        env = AlwaysRequestingEnvironment()
        cfg = algo.initial_configuration().updated({2: {CURSOR: "garbage"}})
        ctx = ActionContext(2, cfg, env)
        target = algo.token_target_edges(ctx, 2)
        assert target == (algo.incident(2)[0],)


class TestSafetyAndFairness:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "triangle"])
    def test_safety(self, fixture, request):
        hypergraph = request.getfixturevalue(fixture)
        algo, result = run_cc3(hypergraph, steps=800, seed=3)
        assert check_exclusion(result.trace, hypergraph).holds
        assert check_synchronization(result.trace, hypergraph).holds
        assert check_essential_discussion(result.trace, hypergraph).holds
        assert check_voluntary_discussion(result.trace, hypergraph).holds

    def test_professor_fairness(self, fig1):
        algo, result = run_cc3(fig1, steps=2000, seed=5)
        summary = professor_fairness_counts(result.trace, fig1)
        assert summary.starved_professors == ()

    def test_committee_fairness_on_triangle(self, triangle):
        """On the triangle every committee convenes: the CC3 cursor cycles
        the token holder through all of its incident committees."""
        algo, result = run_cc3(triangle, steps=2500, seed=7)
        summary = professor_fairness_counts(result.trace, triangle)
        assert summary.starved_committees == (), summary.per_committee

    def test_committee_fairness_on_figure2(self, fig2):
        algo, result = run_cc3(fig2, steps=3000, seed=9)
        summary = professor_fairness_counts(result.trace, fig2)
        assert summary.starved_committees == (), summary.per_committee

    def test_snap_stabilization(self, fig2):
        algo = make_cc3(fig2)
        report = snap_stabilization_sweep(
            algo,
            lambda: AlwaysRequestingEnvironment(discussion_steps=1),
            trials=3,
            max_steps=500,
            seed=41,
        )
        assert report.all_hold, report.violations()


class TestDegreeOfFairConcurrency:
    def test_respects_theorem7_bound(self, fig2):
        algo = make_cc3(fig2)
        result = degree_of_fair_concurrency(algo, trials=2, max_steps=2500, seed=3)
        assert result.observed_min >= result.theorem7_bound, result.as_row()

    def test_disjoint_committees_all_meet(self, two_disjoint):
        algo = make_cc3(two_disjoint)
        result = degree_of_fair_concurrency(
            algo, trials=2, max_steps=1500, seed=1, include_arbitrary_starts=False
        )
        assert result.observed_min == 2
