#!/usr/bin/env python
"""Multiparty-rendezvous coordination for component-based code generation.

The paper's motivating application (Section 1 and [8, 15, 16]) is the
distributed implementation of component-based models (BIP, CSP, Ada): each
*interaction* of the high-level model is an n-ary rendezvous among the
components it connects, and a run-time committee coordination layer decides
which interactions fire, subject to Exclusion / Synchronization, while data
is exchanged during the meeting (the *essential discussion*).

This example models a small producer/consumer pipeline with shared buffers as
a component system, maps its interactions onto committees, and uses
``CC1 ∘ TC`` (maximal concurrency -- throughput matters most for generated
code) to schedule rendezvous.  During every meeting's essential discussion we
move data along the pipeline, demonstrating how the 2-Phase Discussion hook
carries application work.

Run with::

    python examples/rendezvous_codegen.py
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro import CommitteeCoordinator, Hypergraph
from repro.analysis.report import format_table
from repro.kernel.configuration import Configuration, ProcessId
from repro.workloads.request_models import AlwaysRequestingEnvironment

# ---------------------------------------------------------------------------#
# The component system: 3 producers, 2 shared buffers, 3 consumers.
# Interactions (committees):
#   put_i  = {producer_i, buffer}    -- producer hands an item to a buffer
#   get_j  = {buffer, consumer_j}    -- consumer takes an item from a buffer
#   sync   = {buffer_1, buffer_2}    -- buffers rebalance their load
# ---------------------------------------------------------------------------#
PRODUCERS = [1, 2, 3]
BUFFERS = [4, 5]
CONSUMERS = [6, 7, 8]

INTERACTIONS: Dict[str, List[int]] = {
    "put(p1,b1)": [1, 4],
    "put(p2,b1)": [2, 4],
    "put(p3,b2)": [3, 5],
    "get(b1,c1)": [4, 6],
    "get(b1,c2)": [4, 7],
    "get(b2,c3)": [5, 8],
    "rebalance(b1,b2)": [4, 5],
}


class PipelineEnvironment(AlwaysRequestingEnvironment):
    """Request model that also executes the data transfer of each rendezvous.

    ``on_essential_discussion`` is invoked by the algorithm exactly once per
    participant per meeting (action ``Step32``); we use the *buffer*
    participants' invocations to move items along the pipeline.
    """

    def __init__(self) -> None:
        super().__init__(discussion_steps=1)
        self.producer_rendezvous = 0
        self.consumer_rendezvous = 0
        self.discussions: Dict[int, int] = defaultdict(int)

    def on_essential_discussion(self, pid: ProcessId) -> None:
        super().on_essential_discussion(pid)
        self.discussions[pid] += 1
        if pid in PRODUCERS:
            self.producer_rendezvous += 1
        elif pid in CONSUMERS:
            self.consumer_rendezvous += 1


def main() -> None:
    hypergraph = Hypergraph(PRODUCERS + BUFFERS + CONSUMERS, INTERACTIONS.values())
    environment = PipelineEnvironment()
    coordinator = CommitteeCoordinator(hypergraph, algorithm="cc1", token="tree", seed=11)
    outcome = coordinator.run(max_steps=3000, environment=environment)

    rows = []
    for name, members in INTERACTIONS.items():
        key = tuple(sorted(members))
        fired = outcome.fairness.per_committee.get(key, 0)
        rows.append({"interaction": name, "participants": key, "rendezvous fired": fired})
    print(format_table(rows, title="Interactions fired by CC1 ∘ TC"))

    print(f"Rendezvous scheduled : {outcome.meetings_convened}")
    print(f"Producer rendezvous  : {environment.producer_rendezvous}")
    print(f"Consumer rendezvous  : {environment.consumer_rendezvous}")
    print(f"Mean concurrency     : {outcome.metrics.mean_concurrency:.2f} simultaneous interactions")
    print(f"Peak concurrency     : {outcome.metrics.peak_concurrency}")
    print()
    print("Exclusion guarantees a component is in one interaction at a time;")
    print("Synchronization guarantees an interaction fires only with every")
    print("participant ready; the essential discussion carries the data transfer.")


if __name__ == "__main__":
    main()
