#!/usr/bin/env python
"""Snap-stabilization in action: transient faults and immediate recovery.

Snap-stabilization (Section 2.5) promises that *every meeting convened after
the last transient fault* satisfies the full specification -- no stabilization
delay during which convened meetings might be bogus, unlike plain
self-stabilization.

This example

1. runs ``CC2 ∘ TC`` from a *completely arbitrary* configuration (statuses,
   pointers, token counters and lock bits all random -- the aftermath of a
   burst of memory corruptions),
2. lets it run, collecting every meeting that convenes,
3. re-checks Exclusion, Synchronization and the 2-Phase Discussion on the
   recorded trace, and
4. injects a second burst of faults mid-run and repeats the check on the
   suffix,

showing that the safety properties hold for every convened meeting even
though the run never had a clean start.

Run with::

    python examples/fault_recovery.py
"""

from __future__ import annotations

import random

from repro import CC2Algorithm, TokenBinding, TreeTokenCirculation, figure3_hypergraph
from repro.analysis.report import format_table
from repro.kernel.daemon import default_daemon
from repro.kernel.faults import FaultInjector
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import check_exclusion, check_synchronization
from repro.workloads.request_models import AlwaysRequestingEnvironment


def check_trace(trace, hypergraph, label: str) -> dict:
    convened = convened_meetings(trace, hypergraph)
    reports = {
        "Exclusion": check_exclusion(trace, hypergraph),
        "Synchronization": check_synchronization(trace, hypergraph),
        "EssentialDiscussion": check_essential_discussion(trace, hypergraph),
        "VoluntaryDiscussion": check_voluntary_discussion(trace, hypergraph),
    }
    row = {"phase": label, "meetings convened": len(convened)}
    row.update({name: "OK" if report.holds else "VIOLATED" for name, report in reports.items()})
    for report in reports.values():
        for violation in report.violations:
            print("   !!", violation)
    return row


def main() -> None:
    hypergraph = figure3_hypergraph()
    algorithm = CC2Algorithm(hypergraph, TokenBinding(TreeTokenCirculation(hypergraph)))

    # Phase 1: start from an arbitrary configuration (the last fault just happened).
    rng = random.Random(2024)
    corrupted_start = algorithm.arbitrary_configuration(rng)
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=2),
        daemon=default_daemon(seed=3),
        initial_configuration=corrupted_start,
    )
    print("Starting from an arbitrary configuration (every variable random)...")
    result = scheduler.run(max_steps=1200)
    rows = [check_trace(result.trace, hypergraph, "after first fault burst")]

    # Phase 2: corrupt half of the processes mid-run and keep going.
    injector = FaultInjector(algorithm, fraction=0.5, seed=99)
    corrupted_again = injector.corrupt(scheduler.configuration)
    print("Injecting a second burst of transient faults (half the processes corrupted)...")
    scheduler2 = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=2),
        daemon=default_daemon(seed=4),
        initial_configuration=corrupted_again,
    )
    result2 = scheduler2.run(max_steps=1200)
    rows.append(check_trace(result2.trace, hypergraph, "after second fault burst"))

    print()
    print(format_table(rows, title="Safety of every convened meeting (snap-stabilization)"))
    print("Every meeting convened after each fault burst satisfied the full")
    print("specification -- there is no stabilization window with unsafe meetings.")


if __name__ == "__main__":
    main()
