#!/usr/bin/env python
"""Quickstart: run the fair algorithm ``CC2 ∘ TC`` on the paper's Figure 1 example.

This script builds the 6-professor / 5-committee hypergraph of Figure 1,
runs the snap-stabilizing fair committee coordination algorithm on it, and
prints

* the meetings that convened (with the step at which they convened),
* per-professor participation counts (Professor Fairness in action),
* summary metrics (throughput, concurrency, Jain fairness index),
* the analytical concurrency bounds of Section 5.3 for this topology.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CommitteeCoordinator, bounds_for, figure1_hypergraph
from repro.analysis.report import format_table


def main() -> None:
    hypergraph = figure1_hypergraph()
    print("Professors :", hypergraph.vertices)
    print("Committees :", [tuple(e.members) for e in hypergraph.hyperedges])
    print()

    coordinator = CommitteeCoordinator(hypergraph, algorithm="cc2", token="tree", seed=42)
    outcome = coordinator.run(max_steps=1500, discussion_steps=2)

    print(f"Simulated {outcome.steps} steps ({outcome.rounds} rounds); "
          f"{outcome.meetings_convened} meetings convened.\n")

    print("First ten meetings:")
    convene_events = [e for e in outcome.events if e.kind == "convene"][:10]
    for event in convene_events:
        print(f"  step {event.configuration_index:4d}: committee {tuple(event.committee.members)} convened")
    print()

    rows = [
        {"professor": pid, "meetings attended": count}
        for pid, count in sorted(outcome.fairness.per_professor.items())
    ]
    print(format_table(rows, title="Professor participation (fairness)"))

    print(format_table([outcome.metrics.as_row()], title="Run metrics"))

    bounds = bounds_for(hypergraph)
    print(format_table([bounds.as_row()], title="Analytical bounds (Section 5.3)"))


if __name__ == "__main__":
    main()
