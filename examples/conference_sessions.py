#!/usr/bin/env python
"""Conference session scheduling with fairness guarantees.

The committee coordination problem is literally a scheduling problem: program
committee members ("professors") sit on several track committees, track
meetings need *every* member present (Synchronization), a member cannot be in
two meetings at once (Exclusion), and every track should eventually get its
meeting (fairness).

This example builds a small conference with overlapping track committees,
runs both ``CC1`` (maximal concurrency, no fairness guarantee) and ``CC2``
(professor fairness) on the same workload, and contrasts

* how many track meetings each algorithm gets through per round, and
* whether any track or member is starved.

Run with::

    python examples/conference_sessions.py
"""

from __future__ import annotations

from repro import CommitteeCoordinator, Hypergraph
from repro.analysis.report import format_table
from repro.spec.fairness import professor_fairness_counts


#: Program-committee members (ids double as seniority: higher id = more senior).
MEMBERS = {
    1: "Ada", 2: "Barbara", 3: "Charles", 4: "Donald", 5: "Edsger",
    6: "Frances", 7: "Grace", 8: "Hedy", 9: "Ivan", 10: "John",
}

#: Track committees: each track needs all of its members to meet.
TRACKS = {
    "systems":     [1, 2, 3],
    "theory":      [3, 4, 5],
    "networks":    [5, 6],
    "security":    [6, 7, 8],
    "databases":   [8, 9],
    "ml":          [9, 10, 1],
    "steering":    [2, 5, 8],
}


def build_conference() -> Hypergraph:
    return Hypergraph(MEMBERS.keys(), TRACKS.values())


def run(algorithm: str, steps: int = 2500) -> dict:
    hypergraph = build_conference()
    coordinator = CommitteeCoordinator(hypergraph, algorithm=algorithm, seed=7)
    outcome = coordinator.run(max_steps=steps, discussion_steps=2)
    fairness = professor_fairness_counts(outcome.trace, hypergraph)

    track_meetings = {}
    for name, members in TRACKS.items():
        key = tuple(sorted(members))
        track_meetings[name] = fairness.per_committee.get(key, 0)

    starved_members = [MEMBERS[p] for p in fairness.starved_professors]
    return {
        "algorithm": algorithm,
        "meetings": outcome.meetings_convened,
        "rounds": outcome.rounds,
        "meetings/round": round(outcome.meetings_convened / max(1, outcome.rounds), 3),
        "starved members": ", ".join(starved_members) if starved_members else "none",
        "least-served track": min(track_meetings, key=track_meetings.get),
        "its meetings": min(track_meetings.values()),
        "busiest track meetings": max(track_meetings.values()),
    }


def main() -> None:
    hypergraph = build_conference()
    print("Conference with", hypergraph.n, "PC members and", hypergraph.m, "track committees.")
    print("Tracks:")
    for name, members in TRACKS.items():
        print(f"  {name:10s}: {', '.join(MEMBERS[m] for m in sorted(members))}")
    print()

    rows = [run("cc1"), run("cc2"), run("cc3")]
    print(format_table(rows, title="CC1 (max concurrency) vs CC2 (professor fairness) vs CC3 (committee fairness)"))

    print("Reading the table: CC1 may leave a track under-served under contention;")
    print("CC2 guarantees every member keeps attending meetings; CC3 additionally")
    print("cycles through every track committee of the token holder.")


if __name__ == "__main__":
    main()
