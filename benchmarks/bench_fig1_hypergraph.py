"""Figure 1: the example hypergraph and its underlying communication network.

The paper's Figure 1 shows a 6-professor, 5-committee hypergraph (a) and the
induced communication graph G_H (b).  The bench rebuilds both, checks the
edge set of G_H against the one printed in the paper, and reports the
structural/analytical quantities of the topology.
"""

from __future__ import annotations

from repro.analysis.theory import bounds_for
from repro.hypergraph.generators import figure1_communication_edges, figure1_hypergraph


def regenerate_figure1():
    hypergraph = figure1_hypergraph()
    computed = hypergraph.communication_edges()
    expected = tuple(sorted(figure1_communication_edges()))
    bounds = bounds_for(hypergraph)
    return {
        "professors": hypergraph.n,
        "committees": hypergraph.m,
        "G_H edges": len(computed),
        "matches paper's Figure 1(b)": computed == expected,
        "minMM": bounds.analysis.min_mm,
        "MaxMin": bounds.analysis.max_min,
        "MaxHEdge": bounds.analysis.max_hedge,
    }


def test_fig1_hypergraph(benchmark, report):
    row = benchmark.pedantic(regenerate_figure1, rounds=3, iterations=1)
    assert row["matches paper's Figure 1(b)"]
    report("Figure 1 -- example hypergraph and its communication network", [row])
