"""Theorem 5: ``min_{MM ∪ AMM} ≥ minMM − MaxMin + 1``.

A purely combinatorial claim; the bench verifies it by exact enumeration over
the paper topologies and a family of random hypergraphs, and reports how
tight the inequality is (slack = left-hand side minus right-hand side).
"""

from __future__ import annotations

from repro.hypergraph.generators import random_k_uniform_hypergraph
from repro.hypergraph.matching import MatchingAnalysis
from repro.workloads.scenarios import paper_scenarios, scaling_scenarios


def all_topologies():
    named = [(s.name, s.hypergraph) for s in paper_scenarios()]
    named += [
        (s.name, s.hypergraph)
        for s in scaling_scenarios()
        if s.name in ("path-4", "path-6", "cycle-4", "star-5", "grid-3x3", "disjoint-4")
    ]
    for i in range(4):
        named.append(
            (f"random-8-5-seed{i}", random_k_uniform_hypergraph(8, 5, 2, seed=100 + i))
        )
    return named


def run_theorem5():
    rows = []
    all_ok = True
    for name, hypergraph in all_topologies():
        analysis = MatchingAnalysis.of(hypergraph)
        holds = analysis.min_mm_union_amm >= analysis.theorem5_bound
        rows.append(
            {
                "topology": name,
                "minMM": analysis.min_mm,
                "MaxMin": analysis.max_min,
                "thm5 rhs (minMM-MaxMin+1)": analysis.theorem5_bound,
                "lhs min(MM ∪ AMM)": analysis.min_mm_union_amm,
                "slack": analysis.min_mm_union_amm - analysis.theorem5_bound,
                "holds": holds,
            }
        )
        all_ok = all_ok and holds
    return rows, all_ok


def test_thm5_bound(benchmark, report):
    rows, all_ok = benchmark.pedantic(run_theorem5, rounds=1, iterations=1)
    assert all_ok
    report("Theorem 5 -- min(MM ∪ AMM) ≥ minMM − MaxMin + 1 (exact enumeration)", rows)
