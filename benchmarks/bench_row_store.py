"""Run-cache re-submission speedup and columnar-aggregate query margin.

Two claims of `repro.campaign.store` are quantified and asserted:

* **Fully-cached re-submission is ≥ 10x faster wall-clock** than the cold
  run of the same matrix — a cache hit is a sha256 + one small file read
  instead of a seeded simulation — and the cached rows are byte-identical
  to the executed ones (the differential half of the assertion: identical
  bytes, an order of magnitude less wall).
* **Columnar aggregates beat JSONL reparse**: answering the summary-table
  query (per-cell counts, step totals, Jain spread) from a built
  :class:`~repro.campaign.store.ColumnStore` must be faster than
  re-parsing the JSONL text per query — the "stop reparsing per query"
  motivation, measured on a replicated many-thousand-row file.

Perf rows land in ``perf_rows.jsonl`` under the ``run_cache_resubmission``
and ``row_store_aggregates`` schemas registered in
``tools/check_repo.py``.
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.campaign import CampaignSpec, ColumnStore, RunCache, expand_jobs, run_campaign
from repro.campaign.sinks import row_line

#: 2 scenarios x 2 algorithms x 3 seeds = 12 jobs; long enough per run
#: that the cold wall-clock dominates cache bookkeeping by a wide margin.
CACHE_MATRIX = CampaignSpec(
    scenarios=("figure1", "grid-3x3"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2, 3),
    max_steps=1500,
)
MIN_CACHE_SPEEDUP = 10.0

#: The aggregate query is timed on this many rows (a small campaign's rows
#: replicated with shifted indices/seeds — realistic field shapes without
#: simulating thousands of runs).
AGGREGATE_ROWS = 20_000
#: Per-variant best-of-N (the bench_campaign.py sampling pattern).
SAMPLE_REPS = 3


def run_cache_resubmission(perf_emit, cache_dir):
    jobs = expand_jobs(CACHE_MATRIX)
    cache = RunCache(cache_dir)
    start = time.perf_counter()  # repro-lint: disable=RL102 -- bench wall-clock, never enters campaign rows
    cold = run_campaign(jobs, jobs=1, cache=cache)
    cold_seconds = time.perf_counter() - start  # repro-lint: disable=RL102 -- bench wall-clock
    start = time.perf_counter()  # repro-lint: disable=RL102 -- bench wall-clock
    cached = run_campaign(jobs, jobs=1, cache=cache)
    cached_seconds = time.perf_counter() - start  # repro-lint: disable=RL102 -- bench wall-clock
    speedup = cold_seconds / cached_seconds if cached_seconds > 0 else float("inf")
    perf_emit(
        {
            "bench": "run_cache_resubmission",
            "variant": "incremental",
            "runs": len(jobs),
            "cold_seconds": round(cold_seconds, 4),
            "cached_seconds": round(cached_seconds, 4),
            "speedup": round(min(speedup, 1e6), 1),
        }
    )
    table = [
        {
            "variant": label,
            "runs": len(jobs),
            "wall s": round(seconds, 4),
            "speedup": "-" if label == "cold" else f"{speedup:.0f}x",
        }
        for label, seconds in (("cold", cold_seconds), ("cached", cached_seconds))
    ]
    return table, cold, cached, speedup


def _replicated_lines():
    """A many-thousand-row JSONL body with realistic campaign row shapes."""
    base = run_campaign(
        CampaignSpec(scenarios=("figure1", "path-6"), algorithms=("cc1", "cc2"), seeds=(1,), max_steps=200),
        jobs=1,
    ).rows
    lines = []
    for index in range(AGGREGATE_ROWS):
        row = dict(base[index % len(base)])
        row["job"] = index
        row["seed"] = 1 + index // len(base)  # vary a field so rows aren't one repeated string
        lines.append(row_line(row))
    return lines


def _aggregate_from_parsed(rows):
    """The summary-table aggregate, field-by-field over row dicts."""
    cells = {}
    for row in rows:
        key = (row["scenario"], row["algorithm"])
        cell = cells.setdefault(key, {"runs": 0, "violations": 0, "errors": 0, "steps": 0, "jains": []})
        cell["runs"] += 1
        status = row.get("status")
        if status == "violation":
            cell["violations"] += 1
        elif status == "error":
            cell["errors"] += 1
        cell["steps"] += int(row.get("steps", 0) or 0)
        jain = row.get("jain")
        if status != "error" and isinstance(jain, float):
            cell["jains"].append(jain)
    return {
        key: (cell["runs"], cell["violations"], cell["errors"], cell["steps"],
              min(cell["jains"]) if cell["jains"] else None,
              max(cell["jains"]) if cell["jains"] else None)
        for key, cell in cells.items()
    }


def run_aggregate_comparison(perf_emit):
    lines = _replicated_lines()
    text = "\n".join(lines) + "\n"
    store = ColumnStore.from_rows(json.loads(line) for line in lines)
    best_jsonl = best_store = None
    for _ in range(SAMPLE_REPS):
        start = time.perf_counter()  # repro-lint: disable=RL102 -- bench wall-clock
        reparsed = _aggregate_from_parsed(json.loads(line) for line in text.splitlines())
        jsonl_seconds = time.perf_counter() - start  # repro-lint: disable=RL102 -- bench wall-clock
        start = time.perf_counter()  # repro-lint: disable=RL102 -- bench wall-clock
        columnar = {
            (cell["scenario"], cell["algorithm"]): (
                cell["runs"], cell["violations"], cell["errors"], cell["steps"],
                cell["jain_min"], cell["jain_max"],
            )
            for cell in store.cell_stats()
        }
        store_seconds = time.perf_counter() - start  # repro-lint: disable=RL102 -- bench wall-clock
        assert columnar == reparsed  # same answer, different path
        best_jsonl = jsonl_seconds if best_jsonl is None else min(best_jsonl, jsonl_seconds)
        best_store = store_seconds if best_store is None else min(best_store, store_seconds)
    speedup = best_jsonl / best_store if best_store > 0 else float("inf")
    perf_emit(
        {
            "bench": "row_store_aggregates",
            "query": "cell_stats",
            "rows": len(lines),
            "jsonl_seconds": round(best_jsonl, 4),
            "store_seconds": round(best_store, 4),
            "speedup": round(min(speedup, 1e6), 2),
        }
    )
    table = [
        {
            "path": label,
            "rows": len(lines),
            "best query s": round(seconds, 4),
            "speedup": "-" if label == "jsonl reparse" else f"{speedup:.1f}x",
        }
        for label, seconds in (("jsonl reparse", best_jsonl), ("column store", best_store))
    ]
    return table, speedup


def test_run_cache_resubmission(report, perf_row, tmp_path):
    table, cold, cached, speedup = run_cache_resubmission(perf_row, str(tmp_path / "cache"))
    report("Run cache: cold execution vs fully-cached re-submission", table)
    # Differential: cache hits are byte-identical to execution.
    assert cached.jsonl_lines() == cold.jsonl_lines()
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"fully-cached re-submission only {speedup:.1f}x faster than the "
        f"cold run; floor is {MIN_CACHE_SPEEDUP:.0f}x"
    )


def test_row_store_aggregates(report, perf_row):
    table, speedup = run_aggregate_comparison(perf_row)
    report(f"Aggregate query: {AGGREGATE_ROWS} rows, column store vs JSONL reparse", table)
    assert speedup > 1.0, (
        f"columnar cell_stats is {speedup:.2f}x the JSONL-reparse path; "
        "it must beat reparsing per query"
    )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    with tempfile.TemporaryDirectory() as tmp:
        cache_table, _, _, _ = run_cache_resubmission(emit_json_row, tmp)
    emit("Run cache re-submission", cache_table)
    agg_table, _ = run_aggregate_comparison(emit_json_row)
    emit("Columnar aggregates vs JSONL reparse", agg_table)
