"""Theorem 6: the waiting time of ``CC2 ∘ TC`` is ``O(maxDisc × n)`` rounds.

The bench sweeps the number of professors ``n`` (paths of committees) and the
discussion length ``maxDisc``, measures the maximum waiting spell of any
professor, and reports the ratio ``measured / (maxDisc × n)``.  The paper's
claim is asymptotic; the reproduction checks the *shape*: the ratio stays
bounded (it does not grow with ``n`` or ``maxDisc``), i.e. the measured
waiting time scales at most linearly in ``maxDisc × n``.
"""

from __future__ import annotations

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import path_of_committees
from repro.metrics.waiting_time import measure_waiting_time
from repro.tokenring.oracle import OracleTokenModule

SWEEP = [
    # (number of committees in the path, maxDisc)
    (3, 1),
    (5, 1),
    (7, 1),
    (5, 3),
    (5, 6),
]


def run_sweep():
    rows = []
    ratios = []
    for num_committees, max_disc in SWEEP:
        hypergraph = path_of_committees(num_committees)
        algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
        result = measure_waiting_time(
            algorithm, max_disc=max_disc, max_steps=4000, seed=3
        )
        ratio = result.max_wait_rounds / max(1.0, result.theorem6_reference)
        ratios.append(ratio)
        rows.append(
            {
                "topology": f"path-{num_committees}",
                "n": result.n,
                "maxDisc": max_disc,
                "max wait (rounds)": round(result.max_wait_rounds, 1),
                "maxDisc×n": result.theorem6_reference,
                "ratio": round(ratio, 2),
            }
        )
    return rows, ratios


def test_thm6_waiting_time(benchmark, report):
    rows, ratios = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # The O(maxDisc × n) shape: the measured/(maxDisc*n) ratio stays bounded by
    # a modest constant across the sweep (no super-linear blow-up).
    assert max(ratios) < 25.0, ratios
    report("Theorem 6 -- waiting time of CC2 ∘ TC vs maxDisc × n", rows)
