"""Theorem 2: ``CC1 ∘ TC`` is snap-stabilizing, satisfies the 2-phase committee
coordination specification and Maximal Concurrency.

For every paper topology the bench starts many computations from arbitrary
configurations, checks Exclusion / Synchronization / Essential / Voluntary
discussion / Progress on every trace, and runs the Definition 2
(infinite-meeting) experiment to confirm Maximal Concurrency.
"""

from __future__ import annotations

from repro.core.cc1 import CC1Algorithm
from repro.core.composition import TokenBinding
from repro.spec.concurrency import check_maximal_concurrency
from repro.spec.stabilization import snap_stabilization_sweep
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.workloads.request_models import AlwaysRequestingEnvironment
from repro.workloads.scenarios import paper_scenarios


def sweep_topology(scenario, trials=4, steps=600):
    hypergraph = scenario.hypergraph
    algorithm = CC1Algorithm(hypergraph, TokenBinding(TreeTokenCirculation(hypergraph)))
    stabilization = snap_stabilization_sweep(
        algorithm,
        lambda: AlwaysRequestingEnvironment(discussion_steps=1),
        trials=trials,
        max_steps=steps,
        seed=17,
    )
    concurrency = check_maximal_concurrency(algorithm, trials=2, max_steps=2500, seed=23)
    row = {"topology": scenario.name, "meetings convened": stabilization.total_convened_meetings}
    row.update({name: "OK" if ok else "VIOLATED" for name, ok in stabilization.summary().items()})
    row["MaximalConcurrency"] = "OK" if concurrency.holds else "VIOLATED"
    return row, stabilization.all_hold and concurrency.holds


def run_theorem2():
    rows = []
    all_ok = True
    for scenario in paper_scenarios():
        row, ok = sweep_topology(scenario)
        rows.append(row)
        all_ok = all_ok and ok
    return rows, all_ok


def test_thm2_cc1_snap_stabilization(benchmark, report):
    rows, all_ok = benchmark.pedantic(run_theorem2, rounds=1, iterations=1)
    assert all_ok
    report("Theorem 2 -- CC1 ∘ TC snap-stabilization + Maximal Concurrency", rows)
