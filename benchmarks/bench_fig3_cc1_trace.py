"""Figure 3: worked execution of ``CC1 ∘ TC`` on the 10-professor example.

The figure walks through nine configurations in which meetings ``{1,2,3}``
and ``{9,10}`` finish, ``{7,8}``, ``{9,10}`` and ``{6,7}`` convene, the token
travels from professor 1 towards professor 6, and -- the point of the example
-- the low-identifier committee ``{5,6}`` eventually convenes *because* the
token gives it priority over its higher-id neighbours.

The bench replays the scenario: it runs CC1 on the Figure 3 hypergraph with
all professors requesting and verifies that (i) every safety property holds,
(ii) the committees featured in the figure all convene, and (iii) committee
``{5,6}`` -- which pure id-priority would starve -- convenes as well
(Progress via the token).
"""

from __future__ import annotations

from repro.core.cc1 import CC1Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import figure3_hypergraph
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import check_exclusion, check_synchronization
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.workloads.request_models import AlwaysRequestingEnvironment

FEATURED = [(7, 8), (9, 10), (6, 7), (5, 6), (1, 2, 3)]


def replay_figure3(seed: int = 2, steps: int = 2500):
    hypergraph = figure3_hypergraph()
    algorithm = CC1Algorithm(hypergraph, TokenBinding(TreeTokenCirculation(hypergraph)))
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=2),
        daemon=default_daemon(seed=seed),
    )
    result = scheduler.run(max_steps=steps)
    trace = result.trace
    convened = convened_meetings(trace, hypergraph)
    convened_sets = {tuple(e.committee.members) for e in convened}
    token_actions = trace.action_counts()
    return {
        "steps": result.steps,
        "rounds": result.rounds,
        "meetings convened": len(convened),
        "featured committees convened": sum(1 for c in FEATURED if c in convened_sets),
        "committee {5,6} convened": (5, 6) in convened_sets,
        "token releases (Token2/Step4)": token_actions.get("Token2", 0) + token_actions.get("Step4", 0),
        "exclusion": check_exclusion(trace, hypergraph).holds,
        "synchronization": check_synchronization(trace, hypergraph).holds,
        "essential discussion": check_essential_discussion(trace, hypergraph).holds,
        "voluntary discussion": check_voluntary_discussion(trace, hypergraph).holds,
    }


def test_fig3_cc1_trace(benchmark, report):
    row = benchmark.pedantic(replay_figure3, rounds=1, iterations=1)
    assert row["committee {5,6} convened"]
    assert row["featured committees convened"] == len(FEATURED)
    assert row["exclusion"] and row["synchronization"]
    assert row["essential discussion"] and row["voluntary discussion"]
    report("Figure 3 -- CC1 worked example (10 professors)", [row])
