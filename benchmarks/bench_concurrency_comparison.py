"""Qualitative comparison (Sections 3.2 and 6): CC1 / CC2 / CC3 vs the baselines.

The paper argues that (i) the classic reductions (dining / drinking
philosophers, manager tokens) give up concurrency or fairness, (ii) CC1
maximizes concurrency but may starve professors, and (iii) CC2/CC3 trade a
bounded amount of concurrency for fairness.  The bench puts everything on the
same topology and workload and reports throughput, concurrency and fairness
side by side -- the *shape* to check is:

* CC1's mean concurrency ≥ CC2's on conflict-heavy topologies,
* no professor is starved under CC2/CC3/Kumar, while the unfair policies may
  starve somebody,
* the centralized greedy oracle is an upper bound on concurrency.
"""

from __future__ import annotations

from repro.baselines.centralized import CentralizedGreedyCoordinator
from repro.baselines.dining import DiningPhilosophersCoordinator
from repro.baselines.drinking import DrinkingPhilosophersCoordinator
from repro.baselines.kumar_tokens import KumarTokenCoordinator
from repro.baselines.manager_token import ManagerTokenCoordinator
from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.metrics.throughput import measure_throughput
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.scenarios import scenario_by_name

TOPOLOGY = "grid-3x3"
STEPS = 2500
ROUNDS = 500


def compare_on(topology_name: str = TOPOLOGY):
    hypergraph = scenario_by_name(topology_name).hypergraph
    rows = []

    def binding():
        return TokenBinding(OracleTokenModule(hypergraph.vertices))

    paper_algorithms = [
        ("cc1 (maximal concurrency)", CC1Algorithm(hypergraph, binding())),
        ("cc2 (professor fairness)", CC2Algorithm(hypergraph, binding())),
        ("cc3 (committee fairness)", CC3Algorithm(hypergraph, binding())),
    ]
    results = {}
    for name, algorithm in paper_algorithms:
        result = measure_throughput(algorithm, max_steps=STEPS, seed=5)
        results[name] = {
            "meetings/round": result.meetings_per_round,
            "mean_conc": result.mean_concurrency,
            "min_part": result.min_professor_participations,
            "jain": result.jain_fairness_index,
        }
        row = {"algorithm": name}
        row.update(result.as_row())
        rows.append(row)

    baselines = [
        CentralizedGreedyCoordinator(hypergraph, seed=5),
        DiningPhilosophersCoordinator(hypergraph, seed=5),
        DrinkingPhilosophersCoordinator(hypergraph, seed=5),
        ManagerTokenCoordinator(hypergraph, seed=5),
        KumarTokenCoordinator(hypergraph, seed=5),
    ]
    for baseline in baselines:
        result = baseline.run(rounds=ROUNDS)
        results[baseline.name] = {
            "meetings/round": result.meetings_per_round,
            "mean_conc": result.mean_concurrency,
            "min_part": result.min_professor_participations,
            "jain": result.jain_fairness_index(),
        }
        row = {"algorithm": baseline.name}
        row.update(result.as_row())
        rows.append(row)
    return rows, results


def test_concurrency_comparison(benchmark, report):
    rows, results = benchmark.pedantic(compare_on, rounds=1, iterations=1)
    # Shape checks rather than absolute numbers:
    assert results["cc2 (professor fairness)"]["min_part"] > 0
    assert results["cc3 (committee fairness)"]["min_part"] > 0
    assert results["kumar-tokens"]["min_part"] > 0
    # The centralized oracle achieves at least as much steady-state concurrency
    # as any of the distributed snap-stabilizing algorithms.
    oracle = results["centralized-greedy"]["mean_conc"]
    for name in ("cc1 (maximal concurrency)", "cc2 (professor fairness)", "cc3 (committee fairness)"):
        assert results[name]["mean_conc"] <= oracle + 1e-6
    report(f"Concurrency / fairness comparison on {TOPOLOGY}", rows)
