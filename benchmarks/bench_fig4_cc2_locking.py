"""Figure 4: the lock mechanism of ``CC2`` preserving concurrency.

In the figure, professor 1 holds the token and selects committee
``{1,2,5,8}``, which cannot convene while ``{3,4,5}`` is meeting.  Its
members become *locked* (``L`` flags); professor 9 therefore ignores its
higher-priority committee ``{8,9}`` (8 is locked) and convenes ``{6,7,9}``
instead -- concurrency is preserved despite the fairness reservation.

The bench reconstructs the figure's configuration, runs CC2 with infinite
meetings and checks that ``{6,7,9}`` convenes while ``{8,9}`` does not.
"""

from __future__ import annotations

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.core.states import LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING
from repro.hypergraph.generators import figure4_hypergraph
from repro.hypergraph.hypergraph import Hyperedge
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.events import convened_meetings
from repro.tokenring.dijkstra_ring import COUNTER
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import InfiniteMeetingEnvironment

LOCKED_COMMITTEE = Hyperedge([1, 2, 5, 8])
MEETING_345 = Hyperedge([3, 4, 5])


def figure4_configuration(algorithm: CC2Algorithm) -> Configuration:
    states = algorithm.initial_configuration().to_dict()
    for pid in (3, 4, 5):
        states[pid][STATUS] = WAITING
        states[pid][POINTER] = MEETING_345
    states[1][STATUS] = LOOKING
    states[1][POINTER] = LOCKED_COMMITTEE
    states[1][TOKEN_FLAG] = True
    states[1][algorithm.token.prefix + COUNTER] = 1  # professor 1 really holds the token
    return Configuration(states)


def replay_figure4(seed: int = 5, steps: int = 900):
    hypergraph = figure4_hypergraph()
    algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    configuration = figure4_configuration(algorithm)
    scheduler = Scheduler(
        algorithm,
        environment=InfiniteMeetingEnvironment(hypergraph=hypergraph),
        daemon=default_daemon(seed=seed),
        initial_configuration=configuration,
    )
    result = scheduler.run(max_steps=steps)
    convened = {tuple(e.committee.members) for e in convened_meetings(result.trace, hypergraph)}
    final_meetings = {tuple(e.members) for e in algorithm.meetings_in(result.final)}
    lock_actions = result.trace.action_counts().get("Lock", 0)
    return {
        "token holder": 1,
        "locked committee": tuple(LOCKED_COMMITTEE.members),
        "{6,7,9} convened": (6, 7, 9) in convened,
        "{8,9} convened": (8, 9) in convened,
        "meetings held at quiescence": sorted(final_meetings),
        "Lock actions executed": lock_actions,
    }


def test_fig4_cc2_locking(benchmark, report):
    row = benchmark.pedantic(replay_figure4, rounds=1, iterations=1)
    assert row["{6,7,9} convened"]
    assert not row["{8,9} convened"]
    assert row["Lock actions executed"] > 0
    report("Figure 4 -- CC2 lock mechanism (locked professors)", [row])
