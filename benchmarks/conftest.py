"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's per-experiment
index (a figure or a theorem of the paper) and prints the resulting table so
that ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  The timing numbers produced by pytest-benchmark measure the cost of
regenerating the experiment (one full simulation per iteration).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table


def emit(title: str, rows) -> None:
    """Print one experiment's table (shows up with pytest -s / in captured output)."""
    print()
    print(format_table(list(rows), title=title))


@pytest.fixture
def report():
    return emit
