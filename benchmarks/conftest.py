"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's per-experiment
index (a figure or a theorem of the paper) and prints the resulting table so
that ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  The timing numbers produced by pytest-benchmark measure the cost of
regenerating the experiment (one full simulation per iteration).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.report import format_table

#: Machine-readable perf rows land here (one JSON object per line).  The file
#: accumulates across benchmark runs, so successive commits build the repo's
#: perf trajectory; each row is stamped with a wall-clock timestamp.
PERF_LOG = os.path.join(os.path.dirname(__file__), "perf_rows.jsonl")


def emit(title: str, rows) -> None:
    """Print one experiment's table (shows up with pytest -s / in captured output)."""
    print()
    print(format_table(list(rows), title=title))


def emit_json_row(row: dict, path: str = PERF_LOG) -> dict:
    """Append one perf measurement as a JSON line and echo it to stdout.

    Returns the stamped row.  Used by ``bench_engine_scaling.py`` (and any
    future perf benchmark) so the repo keeps a greppable steps/sec baseline.
    """
    stamped = {"timestamp": round(time.time(), 3)}  # repro-lint: disable=RL102 -- perf rows are wall-clock stamped, never replayed
    stamped.update(row)
    line = json.dumps(stamped, sort_keys=True)
    print(f"PERF_ROW {line}")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return stamped


@pytest.fixture
def report():
    return emit


@pytest.fixture
def perf_row():
    return emit_json_row
