"""Section 2.5 (qualitative): snap-stabilization vs plain self-stabilization.

Two measurements:

1. **CC layer (snap-stabilizing)** -- starting from arbitrary configurations,
   *every* meeting convened by ``CC2 ∘ TC`` satisfies the full specification;
   there is no unsafe prefix.  The bench counts convened meetings and safety
   violations over a fault sweep (the violation count must be 0).
2. **Token layer (self-stabilizing only)** -- the underlying token
   circulation does need a stabilization phase: from arbitrary counter
   values several tokens may coexist before merging.  The bench measures how
   many steps the Dijkstra ring needs to converge to a single token, which is
   exactly the transient the CC layer is insulated from.
"""

from __future__ import annotations

import random

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import figure1_hypergraph
from repro.kernel.daemon import default_daemon
from repro.kernel.faults import FaultInjector
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import check_exclusion, check_synchronization
from repro.tokenring.dijkstra_ring import DijkstraRingAlgorithm, DijkstraRingToken
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment

TRIALS = 6
STEPS = 700


def cc_layer_fault_sweep():
    hypergraph = figure1_hypergraph()
    algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    injector = FaultInjector(algorithm, fraction=0.6, seed=3)
    convened = 0
    violations = 0
    for trial in range(TRIALS):
        start = injector.corrupt(algorithm.initial_configuration())
        scheduler = Scheduler(
            algorithm,
            environment=AlwaysRequestingEnvironment(discussion_steps=1),
            daemon=default_daemon(seed=trial),
            initial_configuration=start,
        )
        result = scheduler.run(max_steps=STEPS)
        trace = result.trace
        convened += len(convened_meetings(trace, hypergraph))
        for check in (check_exclusion, check_synchronization, check_essential_discussion, check_voluntary_discussion):
            if not check(trace, hypergraph).holds:
                violations += 1
    return convened, violations


def token_layer_convergence():
    ring = DijkstraRingToken(list(range(1, 11)))
    algorithm = DijkstraRingAlgorithm(ring)
    steps_to_converge = []
    for trial in range(TRIALS):
        scheduler = Scheduler(
            algorithm,
            daemon=default_daemon(seed=trial),
            initial_configuration=algorithm.arbitrary_configuration(random.Random(50 + trial)),
        )
        converged_at = None
        for step in range(2000):
            if len(algorithm.token_holders_in(scheduler.configuration)) == 1:
                converged_at = step
                break
            if scheduler.step() is None:
                break
        steps_to_converge.append(converged_at if converged_at is not None else 2000)
    return steps_to_converge


def run_comparison():
    convened, violations = cc_layer_fault_sweep()
    convergence = token_layer_convergence()
    rows = [
        {
            "layer": "CC2 ∘ TC (snap-stabilizing)",
            "trials": TRIALS,
            "meetings convened after faults": convened,
            "unsafe meetings / property violations": violations,
            "stabilization transient (steps)": 0,
        },
        {
            "layer": "token circulation alone (self-stabilizing)",
            "trials": TRIALS,
            "meetings convened after faults": "-",
            "unsafe meetings / property violations": "-",
            "stabilization transient (steps)": f"{min(convergence)}..{max(convergence)}",
        },
    ]
    return rows, violations


def test_snap_vs_self(benchmark, report):
    rows, violations = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert violations == 0
    report("Snap- vs self-stabilization (Section 2.5)", rows)
