"""Theorem 3: ``CC2 ∘ TC`` is snap-stabilizing, satisfies the 2-phase committee
coordination specification and Professor Fairness.

Same arbitrary-initial-configuration sweep as the Theorem 2 bench, plus a
long fair run per topology verifying that no professor is starved (the
finite rendering of Definition 3).
"""

from __future__ import annotations

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.fairness import professor_fairness_counts
from repro.spec.stabilization import snap_stabilization_sweep
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.workloads.request_models import AlwaysRequestingEnvironment
from repro.workloads.scenarios import paper_scenarios


def sweep_topology(scenario, trials=4, steps=600, fairness_steps=2200):
    hypergraph = scenario.hypergraph
    algorithm = CC2Algorithm(hypergraph, TokenBinding(TreeTokenCirculation(hypergraph)))
    stabilization = snap_stabilization_sweep(
        algorithm,
        lambda: AlwaysRequestingEnvironment(discussion_steps=1),
        trials=trials,
        max_steps=steps,
        seed=19,
    )
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=29),
    )
    fairness_run = scheduler.run(max_steps=fairness_steps)
    fairness = professor_fairness_counts(fairness_run.trace, hypergraph)
    row = {"topology": scenario.name, "meetings convened": stabilization.total_convened_meetings}
    row.update({name: "OK" if ok else "VIOLATED" for name, ok in stabilization.summary().items()})
    row["starved professors"] = len(fairness.starved_professors)
    row["min participations"] = fairness.min_professor_participations
    ok = stabilization.all_hold and not fairness.starved_professors
    return row, ok


def run_theorem3():
    rows = []
    all_ok = True
    for scenario in paper_scenarios():
        row, ok = sweep_topology(scenario)
        rows.append(row)
        all_ok = all_ok and ok
    return rows, all_ok


def test_thm3_cc2_snap_stabilization(benchmark, report):
    rows, all_ok = benchmark.pedantic(run_theorem3, rounds=1, iterations=1)
    assert all_ok
    report("Theorem 3 -- CC2 ∘ TC snap-stabilization + Professor Fairness", rows)
