"""Campaign parallel scaling: worker-pool throughput vs the serial driver.

The campaign engine (:mod:`repro.campaign`) fans seeded runs out across
``multiprocessing`` workers; this bench quantifies the scaling on a fixed
seeded matrix (≥24 jobs) and records one JSON perf row per worker count so
`perf_rows.jsonl` accumulates the campaign-throughput trajectory alongside
the engine and monitor rows.

Two invariants are asserted:

* the aggregate JSONL rows are **byte-identical** for every worker count
  (the campaign's determinism contract), and
* with at least 4 usable cores, ``jobs=4`` is ≥ 2.5x faster wall-clock than
  ``jobs=1``.  On smaller machines (CI containers are often pinned to one
  core) the speedup assertion is skipped — parallel scaling is a hardware
  property — while the determinism assertion always runs.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.campaign import (
    CampaignSpec,
    FaultSchedule,
    JsonlSink,
    execute_job,
    expand_jobs,
    run_campaign,
)

#: 3 scenarios x 2 algorithms x 2 seeds x 2 fault schedules = 24 jobs.
MATRIX = CampaignSpec(
    scenarios=("figure1", "grid-3x3", "path-6"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2),
    faults=(FaultSchedule(), FaultSchedule(every=60, fraction=0.4)),
    max_steps=1500,
)
MIN_PARALLEL_SPEEDUP = 2.5
PARALLEL_JOBS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_scaling(perf_emit):
    rows = []
    results = {}
    for jobs in (1, PARALLEL_JOBS):
        result = run_campaign(MATRIX, jobs=jobs)
        results[jobs] = result
        perf_emit(
            {
                "bench": "campaign_scaling",
                "jobs": jobs,
                "runs": len(result.results),
                "total_steps": result.total_steps,
                "seconds": round(result.elapsed_seconds, 3),
                "runs_per_sec": round(len(result.results) / result.elapsed_seconds, 2),
            }
        )
        rows.append(
            {
                "workers": jobs,
                "runs": len(result.results),
                "violations": result.violations,
                "wall s": round(result.elapsed_seconds, 2),
                "steps/s": round(result.steps_per_sec, 1),
            }
        )
    return rows, results


def test_campaign_scaling(report, perf_row):
    rows, results = run_scaling(perf_row)
    report("Campaign scaling: 24-job seeded matrix, 1 vs 4 workers", rows)
    serial, parallel = results[1], results[PARALLEL_JOBS]
    # Determinism is asserted unconditionally — byte-identical JSONL.
    assert serial.jsonl_lines() == parallel.jsonl_lines()
    cores = _usable_cores()
    if cores >= PARALLEL_JOBS:
        speedup = serial.elapsed_seconds / parallel.elapsed_seconds
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"campaign with {PARALLEL_JOBS} workers only {speedup:.2f}x faster "
            f"than serial on {cores} cores; expected >= {MIN_PARALLEL_SPEEDUP}x"
        )
    else:
        print(
            f"\n(campaign speedup assertion skipped: only {cores} usable "
            f"core(s); determinism asserted)"
        )


#: Smaller matrix for the sink-overhead comparison: the question is the
#: per-row cost of the streaming JSONL sink (a dumps + line-buffered write
#: per completed job), so job count matters more than per-job length.
SINK_MATRIX = CampaignSpec(
    scenarios=("figure1", "path-6"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2, 3),
    max_steps=800,
)
#: Streaming each row may cost at most this fraction of campaign wall-clock.
MAX_SINK_OVERHEAD = 0.15
#: Best-of-3 interleaved sampling (the bench_streaming_spec.py pattern):
#: alternating none/jsonl within each rep keeps machine drift from loading
#: one variant, and the per-variant minimum discards GC/scheduler noise.
SINK_SAMPLE_REPS = 3


def run_sink_overhead(perf_emit, out_path):
    best = {}
    last = {}
    for _ in range(SINK_SAMPLE_REPS):
        for label, sink in (("none", None), ("jsonl", JsonlSink(out_path))):
            result = run_campaign(SINK_MATRIX, jobs=1, sink=sink)
            if sink is not None:
                sink.close()
            last[label] = result
            best[label] = min(best.get(label, result.elapsed_seconds), result.elapsed_seconds)
    overhead = round(best["jsonl"] / best["none"] - 1.0, 4)
    rows = []
    for label in ("none", "jsonl"):
        perf_emit(
            {
                "bench": "campaign_sink_overhead",
                "sink": label,
                "runs": len(last[label].results),
                "total_steps": last[label].total_steps,
                "seconds": round(best[label], 3),
                "runs_per_sec": round(len(last[label].results) / best[label], 2),
                "overhead": 0.0 if label == "none" else overhead,
            }
        )
        rows.append(
            {
                "sink": label,
                "runs": len(last[label].results),
                "best wall s": round(best[label], 3),
                "overhead": "-" if label == "none" else f"{overhead:+.1%}",
            }
        )
    return rows, best, last


def test_campaign_sink_overhead(report, perf_row, tmp_path):
    out_path = str(tmp_path / "rows.jsonl")
    rows, best, last = run_sink_overhead(perf_row, out_path)
    report("Campaign sink overhead: streaming JSONL vs no sink (best of 3)", rows)
    # The streamed file must hold exactly the campaign's rows, in completion
    # order (== job order for jobs=1): crash-safety costs bytes, not truth.
    with open(out_path, "r", encoding="utf-8") as fh:
        streamed = fh.read().splitlines()
    assert streamed == last["jsonl"].jsonl_lines()
    overhead = best["jsonl"] / best["none"] - 1.0
    assert overhead <= MAX_SINK_OVERHEAD, (
        f"streaming JSONL sink cost {overhead:.1%} of campaign wall-clock; "
        f"ceiling is {MAX_SINK_OVERHEAD:.0%}"
    )


#: Driver-overhead comparison matrix: per-job work must dominate so the
#: measured delta is the pipeline's fixed cost (plan + collector fan-out +
#: result assembly), not noise in short runs.
DRIVER_MATRIX = CampaignSpec(
    scenarios=("figure1", "path-6"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2, 3),
    max_steps=400,
)
#: The layered plan → dispatch → collect → finalize pipeline may cost at most
#: this fraction of wall-clock over calling ``execute_job`` in a bare loop.
MAX_DRIVER_OVERHEAD = 0.02
#: More reps than the sink bench: a 2% ceiling needs the best-of-N minimum to
#: converge below scheduler drift, so samples are short and numerous.
DRIVER_SAMPLE_REPS = 5


def run_driver_overhead(perf_emit):
    jobs = expand_jobs(DRIVER_MATRIX)
    best = {}
    last = {}
    for _ in range(DRIVER_SAMPLE_REPS):
        # Interleaved best-of-N (the sink-overhead pattern): alternating the
        # variants within each rep keeps machine drift from loading one side.
        start = time.perf_counter()  # repro-lint: disable=RL102 -- bench harness timing, not simulation state
        inline = [execute_job(job) for job in jobs]
        inline_seconds = time.perf_counter() - start  # repro-lint: disable=RL102 -- bench harness timing, not simulation state
        result = run_campaign(jobs, jobs=1)
        last["inline"], last["driver"] = inline, result
        best["inline"] = min(best.get("inline", inline_seconds), inline_seconds)
        best["driver"] = min(best.get("driver", result.elapsed_seconds), result.elapsed_seconds)
    overhead = round(best["driver"] / best["inline"] - 1.0, 4)
    total_steps = sum(r.steps for r in last["inline"])
    rows = []
    for variant in ("inline", "driver"):
        perf_emit(
            {
                "bench": "campaign_driver_overhead",
                "variant": variant,
                "runs": len(jobs),
                "total_steps": total_steps,
                "seconds": round(best[variant], 3),
                "overhead": 0.0 if variant == "inline" else overhead,
            }
        )
        rows.append(
            {
                "variant": variant,
                "runs": len(jobs),
                "best wall s": round(best[variant], 3),
                "overhead": "-" if variant == "inline" else f"{overhead:+.1%}",
            }
        )
    return rows, best, last


def test_campaign_driver_overhead(report, perf_row):
    rows, best, last = run_driver_overhead(perf_row)
    report(
        "Campaign driver overhead: pipeline vs bare execute_job loop (best of 3)",
        rows,
    )
    # The pipeline must add structure, not rows: its output byte-matches the
    # bare loop's results serialized the same way.
    inline_lines = [
        json.dumps(r.output_row(), sort_keys=True) for r in last["inline"]
    ]
    assert inline_lines == last["driver"].jsonl_lines()
    overhead = best["driver"] / best["inline"] - 1.0
    assert overhead <= MAX_DRIVER_OVERHEAD, (
        f"campaign driver pipeline cost {overhead:.2%} of wall-clock over a "
        f"bare execute_job loop; ceiling is {MAX_DRIVER_OVERHEAD:.0%}"
    )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    table, _ = run_scaling(emit_json_row)
    emit("Campaign scaling", table)
    with tempfile.TemporaryDirectory() as tmp:
        sink_table, _, _ = run_sink_overhead(emit_json_row, os.path.join(tmp, "rows.jsonl"))
    emit("Campaign sink overhead", sink_table)
    driver_table, _, _ = run_driver_overhead(emit_json_row)
    emit("Campaign driver overhead", driver_table)
