"""Campaign parallel scaling: worker-pool throughput vs the serial driver.

The campaign engine (:mod:`repro.campaign`) fans seeded runs out across
``multiprocessing`` workers; this bench quantifies the scaling on a fixed
seeded matrix (≥24 jobs) and records one JSON perf row per worker count so
`perf_rows.jsonl` accumulates the campaign-throughput trajectory alongside
the engine and monitor rows.

Two invariants are asserted:

* the aggregate JSONL rows are **byte-identical** for every worker count
  (the campaign's determinism contract), and
* with at least 4 usable cores, ``jobs=4`` is ≥ 2.5x faster wall-clock than
  ``jobs=1``.  On smaller machines (CI containers are often pinned to one
  core) the speedup assertion is skipped — parallel scaling is a hardware
  property — while the determinism assertion always runs.
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, FaultSchedule, run_campaign

#: 3 scenarios x 2 algorithms x 2 seeds x 2 fault schedules = 24 jobs.
MATRIX = CampaignSpec(
    scenarios=("figure1", "grid-3x3", "path-6"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2),
    faults=(FaultSchedule(), FaultSchedule(every=60, fraction=0.4)),
    max_steps=1500,
)
MIN_PARALLEL_SPEEDUP = 2.5
PARALLEL_JOBS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_scaling(perf_emit):
    rows = []
    results = {}
    for jobs in (1, PARALLEL_JOBS):
        result = run_campaign(MATRIX, jobs=jobs)
        results[jobs] = result
        perf_emit(
            {
                "bench": "campaign_scaling",
                "jobs": jobs,
                "runs": len(result.results),
                "total_steps": result.total_steps,
                "seconds": round(result.elapsed_seconds, 3),
                "runs_per_sec": round(len(result.results) / result.elapsed_seconds, 2),
            }
        )
        rows.append(
            {
                "workers": jobs,
                "runs": len(result.results),
                "violations": result.violations,
                "wall s": round(result.elapsed_seconds, 2),
                "steps/s": round(result.steps_per_sec, 1),
            }
        )
    return rows, results


def test_campaign_scaling(report, perf_row):
    rows, results = run_scaling(perf_row)
    report("Campaign scaling: 24-job seeded matrix, 1 vs 4 workers", rows)
    serial, parallel = results[1], results[PARALLEL_JOBS]
    # Determinism is asserted unconditionally — byte-identical JSONL.
    assert serial.jsonl_lines() == parallel.jsonl_lines()
    cores = _usable_cores()
    if cores >= PARALLEL_JOBS:
        speedup = serial.elapsed_seconds / parallel.elapsed_seconds
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"campaign with {PARALLEL_JOBS} workers only {speedup:.2f}x faster "
            f"than serial on {cores} cores; expected >= {MIN_PARALLEL_SPEEDUP}x"
        )
    else:
        print(
            f"\n(campaign speedup assertion skipped: only {cores} usable "
            f"core(s); determinism asserted)"
        )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    table, _ = run_scaling(emit_json_row)
    emit("Campaign scaling", table)
