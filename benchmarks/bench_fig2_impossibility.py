"""Figure 2 / Theorem 1: Maximal Concurrency and Professor Fairness conflict.

Regenerates the adversarial execution of the impossibility proof on the
5-professor hypergraph ``E = {{1,2},{1,3,5},{3,4}}``: meetings of ``{1,2}``
and ``{3,4}`` alternate out of phase, so a maximal-concurrency algorithm
(CC1) leaves professor 5 with (almost) no meetings, while the fair algorithm
(CC2) reserves committee ``{1,3,5}`` for it regularly -- and, dually, CC2
fails the Maximal Concurrency check on the same topology.
"""

from __future__ import annotations

from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import figure2_hypergraph
from repro.spec.concurrency import measure_fair_concurrency
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.impossibility import run_adversarial_schedule

SEEDS = (0, 1, 3)
STEPS = 2500


def _algo(cls):
    hypergraph = figure2_hypergraph()
    return cls(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))


def run_both_sides():
    rows = []
    for name, cls in (("cc1 (maximal concurrency)", CC1Algorithm), ("cc2 (professor fairness)", CC2Algorithm)):
        prof5 = others = meetings = 0
        for seed in SEEDS:
            outcome = run_adversarial_schedule(_algo(cls), name, max_steps=STEPS, seed=seed)
            prof5 += outcome.professor5_participations
            others += outcome.min_other_participations
            meetings += outcome.meetings_convened
        rows.append(
            {
                "algorithm": name,
                "meetings": meetings,
                "min participations (prof 1-4)": others,
                "participations of prof 5": prof5,
                "prof 5 share": round(prof5 / max(1, others), 3),
            }
        )
    # The dual side of the trade-off: CC2 is not maximally concurrent here.
    cc2 = _algo(CC2Algorithm)
    blocked = 0
    for seed in range(4):
        measurement = measure_fair_concurrency(cc2, max_steps=1500, seed=seed)
        if not measurement.held_is_maximal_matching:
            blocked += 1
    rows.append(
        {
            "algorithm": "cc2 quiescence check",
            "meetings": "-",
            "min participations (prof 1-4)": "-",
            "participations of prof 5": "-",
            "prof 5 share": f"non-maximal in {blocked}/4 runs",
        }
    )
    return rows


def test_fig2_impossibility(benchmark, report):
    rows = benchmark.pedantic(run_both_sides, rounds=1, iterations=1)
    cc1_row, cc2_row = rows[0], rows[1]
    assert cc1_row["prof 5 share"] < 0.2
    assert cc2_row["prof 5 share"] >= 0.2
    report("Figure 2 / Theorem 1 -- fairness vs maximal concurrency", rows)
