"""Theorems 7 and 8: ``CC3 ∘ TC`` (Committee Fairness variant).

* Theorem 7: the degree of fair concurrency of CC3 is at least
  ``min_{MM ∪ AMM'}``.
* Theorem 8: ``min_{MM ∪ AMM'} ≥ minMM − MaxHEdge + 1``.

The bench measures CC3's quiescent meeting count against the Theorem 7 bound
and verifies the Theorem 8 inequality by enumeration; it also runs a long
fair execution and reports whether every committee convened (the Committee
Fairness property CC3 adds over CC2).
"""

from __future__ import annotations

from repro.analysis.theory import bounds_for
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.metrics.concurrency import degree_of_fair_concurrency
from repro.spec.fairness import professor_fairness_counts
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment
from repro.workloads.scenarios import paper_scenarios, scaling_scenarios


def chosen_scenarios():
    chosen = [s for s in paper_scenarios() if s.name in ("figure1", "figure2-impossibility")]
    chosen += [s for s in scaling_scenarios() if s.name in ("path-4", "star-5", "disjoint-4")]
    return chosen


def measure(scenario, steps=3000, fairness_steps=2800):
    hypergraph = scenario.hypergraph
    algorithm = CC3Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    bounds = bounds_for(hypergraph)
    concurrency = degree_of_fair_concurrency(
        algorithm, trials=2, max_steps=steps, seed=7, analysis=bounds.analysis
    )
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=11),
    )
    run = scheduler.run(max_steps=fairness_steps)
    fairness = professor_fairness_counts(run.trace, hypergraph)
    thm8_ok = bounds.theorem8_holds
    thm7_ok = concurrency.observed_min >= concurrency.theorem7_bound
    row = {
        "topology": scenario.name,
        "thm7 bound min(MM ∪ AMM')": concurrency.theorem7_bound,
        "thm8 rhs minMM-MaxHEdge+1": concurrency.theorem8_bound,
        "observed min degree": concurrency.observed_min,
        "thm7 respected": thm7_ok,
        "thm8 respected": thm8_ok,
        "committees never convened": len(fairness.starved_committees),
        "professors starved": len(fairness.starved_professors),
    }
    return row, thm7_ok and thm8_ok and not fairness.starved_professors


def run_theorems_7_8():
    rows = []
    all_ok = True
    for scenario in chosen_scenarios():
        row, ok = measure(scenario)
        rows.append(row)
        all_ok = all_ok and ok
    return rows, all_ok


def test_thm7_8_cc3(benchmark, report):
    rows, all_ok = benchmark.pedantic(run_theorems_7_8, rounds=1, iterations=1)
    assert all_ok
    report("Theorems 7/8 -- CC3 ∘ TC committee fairness and concurrency bounds", rows)
