"""Engine scaling: dense vs incremental scheduler throughput.

The kernel's incremental engine (copy-on-write configurations + enabled-set
reuse + dirty-set guard re-evaluation, see :mod:`repro.kernel.scheduler`)
exists to make the step cost proportional to what changed rather than to
``n``.  This bench quantifies that: it runs ``CC2 ∘ TC`` on a path of
committees at n ∈ {10, 50, 200} under the default weakly fair daemon with
both engines and reports steps/sec plus the speedup.

Each (n, engine) measurement is also emitted as a JSON row (via the
``perf_row`` fixture → ``benchmarks/perf_rows.jsonl``) so successive commits
accumulate a machine-readable perf trajectory for the hot path.

A short equivalence check (identical step records and final configuration
under the shared seed) guards against the incremental engine drifting from
the reference semantics while we chase speed.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import path_of_committees
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment

#: ``path_of_committees(k)`` has ``n = k + 1`` professors.
SIZES = (10, 50, 200)
STEPS = {10: 1200, 50: 500, 200: 250}
SEED = 11
#: Acceptance floor: the incremental engine must at least double steps/sec at
#: production-ish sizes (measured ~3.5x at n=50 and ~9x at n=200).
MIN_SPEEDUP_AT_SCALE = 2.0


class _NoEnvIndexCC2(CC2Algorithm):
    """CC2 with the environment-sensitivity status index disabled.

    ``environment_sensitive_variables = None`` makes the incremental engine
    fall back to a full ``environment_sensitive_processes`` status scan
    between every two steps (the pre-index behaviour), so the bench can
    quantify what the index buys.
    """

    environment_sensitive_variables = None


def _build_scheduler(n: int, engine: str) -> Scheduler:
    hypergraph = path_of_committees(n - 1)
    algorithm_cls = _NoEnvIndexCC2 if engine == "incremental-noindex" else CC2Algorithm
    algorithm = algorithm_cls(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    return Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=SEED),
        record_configurations=False,
        engine="incremental" if engine == "incremental-noindex" else engine,
    )


def _measure(n: int, engine: str) -> Tuple[float, int]:
    scheduler = _build_scheduler(n, engine)
    steps = STEPS[n]
    start = time.perf_counter()  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    result = scheduler.run(max_steps=steps)
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    return (result.steps / elapsed if elapsed > 0 else float("inf")), result.steps


def _assert_equivalent(n: int, steps: int = 120) -> None:
    dense = _build_scheduler(n, "dense")
    incremental = _build_scheduler(n, "incremental")
    dense_result = dense.run(max_steps=steps)
    incremental_result = incremental.run(max_steps=steps)
    assert tuple(dense_result.trace.steps) == tuple(incremental_result.trace.steps)
    assert dense_result.final == incremental_result.final


def run_scaling(perf_emit) -> Tuple[list, Dict[int, float]]:
    rows = []
    speedups: Dict[int, float] = {}
    for n in SIZES:
        rates = {}
        # ``incremental-noindex`` isolates the environment-sensitivity status
        # index: same engine, but the sensitive set is re-scanned from every
        # status between steps instead of being maintained from the deltas.
        for engine in ("dense", "incremental-noindex", "incremental"):
            rate, steps = _measure(n, engine)
            rates[engine] = rate
            perf_emit(
                {
                    "bench": "engine_scaling",
                    "engine": engine,
                    "n": n,
                    "steps": steps,
                    "steps_per_sec": round(rate, 1),
                }
            )
        speedups[n] = rates["incremental"] / rates["dense"]
        rows.append(
            {
                "n": n,
                "dense steps/s": round(rates["dense"], 1),
                "no-index steps/s": round(rates["incremental-noindex"], 1),
                "incremental steps/s": round(rates["incremental"], 1),
                "env-index gain": round(
                    rates["incremental"] / rates["incremental-noindex"], 2
                ),
                "speedup": round(speedups[n], 2),
            }
        )
    return rows, speedups


def test_engine_scaling(report, perf_row):
    for n in SIZES:
        _assert_equivalent(n)
    rows, speedups = run_scaling(perf_row)
    report("Engine scaling: dense vs incremental (CC2 ∘ oracle, path topology)", rows)
    for n, speedup in speedups.items():
        if n < 50:
            continue
        if speedup < MIN_SPEEDUP_AT_SCALE:
            # Wall-clock ratios from one short sample are jitter-prone on a
            # loaded machine; re-measure once before declaring a regression
            # (the real margin is ~3.4x at n=50 and ~15x at n=200).
            dense_rate, _ = _measure(n, "dense")
            incremental_rate, _ = _measure(n, "incremental")
            speedup = max(speedup, incremental_rate / dense_rate)
        assert speedup >= MIN_SPEEDUP_AT_SCALE, (
            f"incremental engine only {speedup:.2f}x dense at n={n} "
            f"(two samples); expected >= {MIN_SPEEDUP_AT_SCALE}x"
        )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    table, _ = run_scaling(emit_json_row)
    emit("Engine scaling", table)
