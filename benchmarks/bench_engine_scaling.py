"""Engine scaling: dense vs incremental vs batched scheduler throughput.

The kernel's incremental engine (copy-on-write configurations + enabled-set
reuse + dirty-set guard re-evaluation, see :mod:`repro.kernel.scheduler`)
exists to make the step cost proportional to what changed rather than to
``n``.  This bench quantifies that: it runs ``CC2 ∘ TC`` on a path of
committees at n ∈ {10, 50, 200} under the default weakly fair daemon with
both engines and reports steps/sec plus the speedup.

The batched lockstep engine (:mod:`repro.kernel.batched`) targets the
*cross-run* axis instead: one vectorized guard sweep serves every lane of a
seed sweep, so aggregate steps·runs/sec grows with the lane count on a
single core.  ``test_batched_engine_scaling`` measures raw-mode batches at
runs ∈ {16, 64, 256} against the same seeds run as a solo ``incremental``
loop and enforces the ≥5x aggregate-throughput floor at 256 lanes.

Each measurement is also emitted as a JSON row (via the ``perf_row``
fixture → ``benchmarks/perf_rows.jsonl``) so successive commits accumulate
a machine-readable perf trajectory for the hot path.

A short equivalence check (identical step records and final configuration
under the shared seed) guards against the fast engines drifting from the
reference semantics while we chase speed.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import pytest

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import path_of_committees
from repro.kernel.batched import numpy_available
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment

#: ``path_of_committees(k)`` has ``n = k + 1`` professors.
SIZES = (10, 50, 200)
STEPS = {10: 1200, 50: 500, 200: 250}
SEED = 11
#: Acceptance floor: the incremental engine must at least double steps/sec at
#: production-ish sizes (measured ~3.5x at n=50 and ~9x at n=200).
MIN_SPEEDUP_AT_SCALE = 2.0

#: Batched-engine lane counts (the cross-run scaling axis).
BATCH_RUNS = (16, 64, 256)
#: Professors in the batched scenario (small on purpose: per-run vectorization
#: pays off exactly where per-run work is too small to amortize solo overhead).
BATCH_N = 10
BATCH_STEPS = 150
#: Acceptance floor: at 256 lanes the batch must move ≥5x the aggregate
#: lane-steps/sec of the same seeds run as a solo incremental loop —
#: single-core vectorization, not parallelism.
MIN_BATCHED_SPEEDUP = 5.0


class _NoEnvIndexCC2(CC2Algorithm):
    """CC2 with the environment-sensitivity status index disabled.

    ``environment_sensitive_variables = None`` makes the incremental engine
    fall back to a full ``environment_sensitive_processes`` status scan
    between every two steps (the pre-index behaviour), so the bench can
    quantify what the index buys.
    """

    environment_sensitive_variables = None


def _build_scheduler(n: int, engine: str) -> Scheduler:
    hypergraph = path_of_committees(n - 1)
    algorithm_cls = _NoEnvIndexCC2 if engine == "incremental-noindex" else CC2Algorithm
    algorithm = algorithm_cls(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    return Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=SEED),
        record_configurations=False,
        engine="incremental" if engine == "incremental-noindex" else engine,
    )


def _measure(n: int, engine: str) -> Tuple[float, int]:
    scheduler = _build_scheduler(n, engine)
    steps = STEPS[n]
    start = time.perf_counter()  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    result = scheduler.run(max_steps=steps)
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    return (result.steps / elapsed if elapsed > 0 else float("inf")), result.steps


def _assert_equivalent(n: int, steps: int = 120) -> None:
    dense = _build_scheduler(n, "dense")
    incremental = _build_scheduler(n, "incremental")
    dense_result = dense.run(max_steps=steps)
    incremental_result = incremental.run(max_steps=steps)
    assert tuple(dense_result.trace.steps) == tuple(incremental_result.trace.steps)
    assert dense_result.final == incremental_result.final


def run_scaling(perf_emit) -> Tuple[list, Dict[int, float]]:
    rows = []
    speedups: Dict[int, float] = {}
    for n in SIZES:
        rates = {}
        # ``incremental-noindex`` isolates the environment-sensitivity status
        # index: same engine, but the sensitive set is re-scanned from every
        # status between steps instead of being maintained from the deltas.
        for engine in ("dense", "incremental-noindex", "incremental"):
            rate, steps = _measure(n, engine)
            rates[engine] = rate
            perf_emit(
                {
                    "bench": "engine_scaling",
                    "engine": engine,
                    "n": n,
                    "steps": steps,
                    "steps_per_sec": round(rate, 1),
                }
            )
        speedups[n] = rates["incremental"] / rates["dense"]
        rows.append(
            {
                "n": n,
                "dense steps/s": round(rates["dense"], 1),
                "no-index steps/s": round(rates["incremental-noindex"], 1),
                "incremental steps/s": round(rates["incremental"], 1),
                "env-index gain": round(
                    rates["incremental"] / rates["incremental-noindex"], 2
                ),
                "speedup": round(speedups[n], 2),
            }
        )
    return rows, speedups


def test_engine_scaling(report, perf_row):
    for n in SIZES:
        _assert_equivalent(n)
    rows, speedups = run_scaling(perf_row)
    report("Engine scaling: dense vs incremental (CC2 ∘ oracle, path topology)", rows)
    for n, speedup in speedups.items():
        if n < 50:
            continue
        if speedup < MIN_SPEEDUP_AT_SCALE:
            # Wall-clock ratios from one short sample are jitter-prone on a
            # loaded machine; re-measure once before declaring a regression
            # (the real margin is ~3.4x at n=50 and ~15x at n=200).
            dense_rate, _ = _measure(n, "dense")
            incremental_rate, _ = _measure(n, "incremental")
            speedup = max(speedup, incremental_rate / dense_rate)
        assert speedup >= MIN_SPEEDUP_AT_SCALE, (
            f"incremental engine only {speedup:.2f}x dense at n={n} "
            f"(two samples); expected >= {MIN_SPEEDUP_AT_SCALE}x"
        )


# --------------------------------------------------------------------------- #
# Batched lockstep engine: cross-run throughput
# --------------------------------------------------------------------------- #
def _batched_scenario():
    hypergraph = path_of_committees(BATCH_N - 1)
    algorithm = CC2Algorithm(
        hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices))
    )
    return algorithm


def _measure_batched(algorithm, runs: int) -> Tuple[float, int]:
    """Raw-mode lockstep batch: aggregate lane-steps/sec across ``runs`` lanes."""
    from repro.core.batched_program import compile_program
    from repro.kernel.batched import BatchedScheduler

    program = compile_program(algorithm, AlwaysRequestingEnvironment(discussion_steps=1))
    initials = [algorithm.initial_configuration() for _ in range(runs)]
    daemons = [default_daemon(seed=SEED + lane) for lane in range(runs)]
    scheduler = BatchedScheduler(program, initials, daemons, record=False)
    start = time.perf_counter()  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    results = scheduler.run(BATCH_STEPS)
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    total = sum(result.steps for result in results)
    return (total / elapsed if elapsed > 0 else float("inf")), total


def _measure_incremental_loop(algorithm, runs: int) -> Tuple[float, int]:
    """The same ``runs`` seeds as a solo incremental loop (the status quo)."""
    total = 0
    start = time.perf_counter()  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    for lane in range(runs):
        scheduler = Scheduler(
            algorithm,
            environment=AlwaysRequestingEnvironment(discussion_steps=1),
            daemon=default_daemon(seed=SEED + lane),
            record_configurations=False,
            engine="incremental",
        )
        total += scheduler.run(max_steps=BATCH_STEPS).steps
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    return (total / elapsed if elapsed > 0 else float("inf")), total


def run_batched_scaling(perf_emit) -> Tuple[list, Dict[int, float]]:
    algorithm = _batched_scenario()
    rows = []
    speedups: Dict[int, float] = {}
    for runs in BATCH_RUNS:
        batched_rate, batched_steps = _measure_batched(algorithm, runs)
        loop_rate, loop_steps = _measure_incremental_loop(algorithm, runs)
        assert batched_steps == loop_steps  # same seeds, same work
        speedups[runs] = batched_rate / loop_rate
        for engine, rate, steps in (
            ("batched", batched_rate, batched_steps),
            ("incremental-loop", loop_rate, loop_steps),
        ):
            perf_emit(
                {
                    "bench": "engine_scaling_batched",
                    "engine": engine,
                    "runs": runs,
                    "n": BATCH_N,
                    "steps": steps,
                    "steps_per_sec": round(rate, 1),
                }
            )
        rows.append(
            {
                "runs": runs,
                "batched lane-steps/s": round(batched_rate, 1),
                "incremental-loop lane-steps/s": round(loop_rate, 1),
                "speedup": round(speedups[runs], 2),
            }
        )
    return rows, speedups


def test_batched_engine_scaling(report, perf_row):
    if not numpy_available():
        pytest.skip("batched engine needs the repro-cc[batched] extra")
    rows, speedups = run_batched_scaling(perf_row)
    report(
        "Batched engine scaling: lockstep lanes vs solo incremental loop "
        f"(CC2 ∘ oracle, path n={BATCH_N}, {BATCH_STEPS} steps/lane)",
        rows,
    )
    speedup = speedups[max(BATCH_RUNS)]
    if speedup < MIN_BATCHED_SPEEDUP:
        # One short wall-clock sample is jitter-prone; re-measure once
        # before declaring a regression (the real margin is well above 5x).
        algorithm = _batched_scenario()
        batched_rate, _ = _measure_batched(algorithm, max(BATCH_RUNS))
        loop_rate, _ = _measure_incremental_loop(algorithm, max(BATCH_RUNS))
        speedup = max(speedup, batched_rate / loop_rate)
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched engine only {speedup:.2f}x the incremental loop at "
        f"runs={max(BATCH_RUNS)} (two samples); expected >= {MIN_BATCHED_SPEEDUP}x"
    )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    table, _ = run_scaling(emit_json_row)
    emit("Engine scaling", table)
    if numpy_available():
        batched_table, _ = run_batched_scaling(emit_json_row)
        emit("Batched engine scaling", batched_table)
