"""Streaming spec monitor overhead on the incremental engine.

The streaming spec subsystem (:mod:`repro.spec.streaming`) exists so that
production-scale sparse runs can assert safety/progress/fairness while they
happen.  That is only viable if the monitors ride the hot path cheaply; this
bench quantifies the toll: ``CC2 ∘ TC`` on the ``cycle-100`` stress topology
(n = m = 100), incremental engine, ``record_configurations=False``, with and
without a :class:`~repro.spec.streaming.StreamingSpecSuite` attached to the
scheduler's observer hook.

Acceptance: monitor overhead <= 6% of plain sparse throughput — below the
~6-9% the monitors cost when they swept all ``n`` professors and ``m``
committees every step, before the kernel's writer-set delta protocol
(:class:`~repro.kernel.trace.StepDelta`) let them update in
``O(|writers|)`` per step.  Each measurement takes the best of
``MEASUREMENTS`` interleaved plain/monitored samples (wall-clock ratios of
single short runs are jitter-dominated) and is emitted as a JSON perf row
(``benchmarks/perf_rows.jsonl``) so successive commits track both the plain
and the monitored steps/sec.

A correctness guard re-runs a short monitored prefix against the dense
post-hoc checkers before timing anything.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.properties import check_exclusion, check_progress, check_synchronization
from repro.spec.streaming import StreamingSpecSuite
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.scenarios import scenario_by_name
from repro.workloads.request_models import AlwaysRequestingEnvironment

SCENARIO = "cycle-100"
STEPS = 600
SEED = 23
#: Interleaved samples per kind; the best rate of each is compared.
MEASUREMENTS = 3
#: Acceptance ceiling for the monitors' toll on sparse incremental
#: throughput (the pre-delta full-sweep monitors cost ~6-9% here).
MAX_OVERHEAD = 0.06


def _build_scheduler(monitored: bool) -> Tuple[Scheduler, Optional[StreamingSpecSuite]]:
    hypergraph = scenario_by_name(SCENARIO).hypergraph
    algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    suite = StreamingSpecSuite(hypergraph) if monitored else None
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=SEED),
        record_configurations=False,
        engine="incremental",
        step_listener=suite.observe_step if suite is not None else None,
    )
    return scheduler, suite


def _measure(monitored: bool) -> float:
    scheduler, _ = _build_scheduler(monitored)
    start = time.perf_counter()  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    result = scheduler.run(max_steps=STEPS)
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- perf bench measures wall clock by design
    return result.steps / elapsed if elapsed > 0 else float("inf")


def _assert_monitored_verdicts_correct(steps: int = 150) -> None:
    hypergraph = scenario_by_name(SCENARIO).hypergraph
    algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    dense = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=SEED),
    )
    trace = dense.run(max_steps=steps).trace
    scheduler, suite = _build_scheduler(monitored=True)
    scheduler.run(max_steps=steps)
    verdicts = suite.verdicts()
    assert verdicts.exclusion == check_exclusion(trace, hypergraph)
    assert verdicts.synchronization == check_synchronization(trace, hypergraph)
    assert verdicts.progress == check_progress(trace, hypergraph)


def run_overhead(perf_emit):
    # Interleave the two kinds and keep the best rate of each: the best-case
    # sample is the least polluted by scheduler noise on a shared machine,
    # and the *ratio* of bests is what the acceptance bound is about.
    rates = {"plain": 0.0, "monitored": 0.0}
    for _ in range(MEASUREMENTS):
        rates["plain"] = max(rates["plain"], _measure(False))
        rates["monitored"] = max(rates["monitored"], _measure(True))
    overhead = 1.0 - rates["monitored"] / rates["plain"]
    for kind, rate in rates.items():
        perf_emit(
            {
                "bench": "streaming_spec_overhead",
                "scenario": SCENARIO,
                "kind": kind,
                "engine": "incremental",
                "n": 100,
                "steps": STEPS,
                "steps_per_sec": round(rate, 1),
                "overhead": round(overhead, 4),
            }
        )
    rows = [
        {
            "scenario": SCENARIO,
            "plain steps/s": round(rates["plain"], 1),
            "monitored steps/s": round(rates["monitored"], 1),
            "overhead": f"{overhead * 100:.1f}%",
        }
    ]
    return rows, overhead


def test_streaming_spec_overhead(report, perf_row):
    _assert_monitored_verdicts_correct()
    rows, overhead = run_overhead(perf_row)
    report("Streaming spec monitors: overhead on the incremental engine", rows)
    if overhead > MAX_OVERHEAD:
        # One short wall-clock sample is jitter-prone; re-measure once before
        # declaring a regression.
        plain = _measure(False)
        monitored = _measure(True)
        overhead = min(overhead, 1.0 - monitored / plain)
    assert overhead <= MAX_OVERHEAD, (
        f"streaming spec monitors cost {overhead * 100:.1f}% of sparse "
        f"incremental throughput at n=100; ceiling is {MAX_OVERHEAD * 100:.0f}%"
    )


if __name__ == "__main__":  # pragma: no cover - manual perf runs
    from conftest import emit, emit_json_row

    _assert_monitored_verdicts_correct()
    table, _ = run_overhead(emit_json_row)
    emit("Streaming spec monitor overhead", table)
