"""Theorem 4: the Degree of Fair Concurrency of ``CC2 ∘ TC`` is at least
``min_{MM ∪ AMM}``.

For each topology the bench computes the analytical lower bound by exact
enumeration (Section 5.3) and measures the degree empirically: meetings never
end (Definition 5's artefact), the system goes quiescent, and the number of
held meetings is sampled over several daemon seeds and arbitrary starting
configurations.  The paper's claim is ``observed minimum ≥ bound``.
"""

from __future__ import annotations

from repro.analysis.theory import bounds_for
from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding
from repro.metrics.concurrency import degree_of_fair_concurrency
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.scenarios import Scenario, paper_scenarios, scaling_scenarios


def interesting_scenarios():
    chosen = [s for s in paper_scenarios() if s.name in ("figure1", "figure2-impossibility", "figure4-cc2-locks")]
    chosen += [s for s in scaling_scenarios() if s.name in ("path-4", "cycle-4", "star-5", "disjoint-4")]
    return chosen


def measure_scenario(scenario: Scenario, trials=3, steps=3000):
    hypergraph = scenario.hypergraph
    algorithm = CC2Algorithm(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))
    bounds = bounds_for(hypergraph)
    result = degree_of_fair_concurrency(
        algorithm, trials=trials, max_steps=steps, seed=5, analysis=bounds.analysis
    )
    row = {
        "topology": scenario.name,
        "thm4 bound min(MM ∪ AMM)": result.theorem4_bound,
        "thm5 bound minMM-MaxMin+1": result.theorem5_bound,
        "observed min degree": result.observed_min,
        "observed max degree": result.observed_max,
        "bound respected": result.respects_theorem4,
    }
    return row, result.respects_theorem4


def run_theorem4():
    rows = []
    all_ok = True
    for scenario in interesting_scenarios():
        row, ok = measure_scenario(scenario)
        rows.append(row)
        all_ok = all_ok and ok
    return rows, all_ok


def test_thm4_degree_of_fair_concurrency(benchmark, report):
    rows, all_ok = benchmark.pedantic(run_theorem4, rounds=1, iterations=1)
    assert all_ok
    report("Theorem 4 -- degree of fair concurrency of CC2 ∘ TC vs analytical bound", rows)
